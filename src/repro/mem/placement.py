"""Conflict-aware placement: optimize the memory layout against set conflicts.

A6 established the motivating fact: under the paper's fully-associative
model, layout is provably irrelevant (only the *set* of blocks touched
matters), but under direct-mapped and low-associativity organizations,
conflict misses are large and swing with layout in non-obvious ways —
conflicts depend on addresses modulo the set count, not on contiguity.
This module closes that loop: it searches the placement space
:meth:`repro.mem.layout.MemoryLayout.place_graph` exposes (any interleaving
of state regions and channel buffers, always block-aligned and
non-overlapping by construction) for an order that minimizes conflict
misses at a target geometry and replacement policy.

Three ideas make the search cheap and exact:

* **Block-remap cost model** — a placement is an object permutation, and
  every object's intra-region block offsets survive any permutation (all
  regions are block-aligned), so a candidate's block trace is
  ``new_start[obj_of_access] + block_offset``: one gather over the trace
  compiled *once* under the seed layout, never a re-execution.  The score
  is then the actual miss count of the replay kernel
  (:func:`repro.runtime.replay.replay_misses`) on the remapped trace —
  bit-identical to recompiling under the candidate layout and simulating
  stepwise (``tests/test_placement.py`` asserts this exactly).  External
  stream arenas ride along as two pseudo-objects whose bases shift with the
  candidate footprint, reproducing :func:`~repro.runtime.executor.build_memory_plan`
  arithmetic to the word.
* **Temporal-affinity conflict graph** — objects co-scheduled within a
  short reuse window of the trace are the ones that must not collide in a
  set.  The graph is extracted from the run-length-compressed object
  sequence of the compiled trace; nearer co-occurrences weigh more.
* **Two strategies behind a registry** (the shape is classic: assigning hot
  objects to capacity-limited sets is capacitated facility location, and
  FLIP-style swap local search is cheap and effective on sparse conflict
  graphs): ``"color"`` greedily appends, at each cursor position, the
  unplaced object whose set span conflicts least with what is already
  placed (greedy set-coloring of the conflict graph); ``"swap"`` refines
  that order by pairwise-swap local search scored with the *true* remap
  cost model, visiting heavy conflict pairs first.  ``"topo"`` is the seed
  topological layout, kept as the baseline.

:func:`optimize_placement` never returns a placement worse than the seed
(it falls back when the search cannot improve), so callers can enable it
unconditionally.  Wire-up: experiment A7
(:func:`repro.analysis.sweeps.ablation_a7_placement`), CLI
``schedule --layout {topo,color,swap}``, ``benchmarks/bench_placement.py``,
and ``examples/layout_tuning.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.base import CacheGeometry
from repro.errors import LayoutError
from repro.graphs.sdf import StreamGraph
from repro.mem.layout import ObjectKey, layout_objects
from repro.runtime.executor import EXT_OUT_SPAN

__all__ = [
    "PlacementInstance",
    "PlacementResult",
    "build_instance",
    "remap_blocks",
    "remap_trace",
    "placement_cost",
    "conflict_graph",
    "greedy_color_order",
    "swap_refine",
    "register_placement",
    "get_placement",
    "available_placements",
    "optimize_instance",
    "optimize_placement",
]



@dataclass
class PlacementInstance:
    """One schedule's compiled trace, factored for placement search.

    ``objects`` is the seed placement order (index = object id);
    ``obj_of_access[i]`` is the object id access ``i`` touches, with two
    pseudo-ids past the real objects for the external input / output stream
    arenas, and ``block_offset[i]`` the access's block offset inside that
    object.  Together with per-object block counts this is everything a
    candidate order needs to reproduce its exact block trace.
    """

    graph: StreamGraph
    block: int
    trace: "CompiledTrace"
    objects: Tuple[ObjectKey, ...]
    lengths: np.ndarray
    nblocks: np.ndarray
    obj_of_access: np.ndarray
    block_offset: np.ndarray

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    def index_of(self, key: ObjectKey) -> int:
        try:
            return self.objects.index(key)
        except ValueError:
            raise LayoutError(f"unknown placement object {key!r}") from None


def build_instance(
    graph: StreamGraph,
    schedule,
    block: int,
    capacities: Optional[Dict[int, int]] = None,
    order: Optional[Iterable[str]] = None,
    count_external: bool = True,
) -> PlacementInstance:
    """Compile ``schedule`` once under the seed layout and factor the trace.

    ``order`` is the seed state order (the baseline the optimizer must
    beat); ``capacities`` defaults to the schedule's own, exactly like
    :func:`repro.runtime.compiled.compile_trace`.
    """
    from repro.runtime.compiled import TraceCompiler

    if capacities is None:
        capacities = getattr(schedule, "capacities", None)
    if order is not None:
        order = list(order)  # consumed twice below: compiler and layout_objects
    compiler = TraceCompiler(
        graph, block, capacities=capacities, layout_order=order,
        count_external=count_external,
    )
    trace = compiler.compile(schedule)
    layout = compiler.layout
    objects = tuple(layout_objects(graph, order=order))

    n_obj = len(objects)
    lengths = np.empty(n_obj, dtype=np.int64)
    starts = np.empty(n_obj, dtype=np.int64)
    for i, (kind, key) in enumerate(objects):
        region = layout.state_region(key) if kind == "state" else layout.buffer_region(key)
        lengths[i] = region.length
        starts[i] = region.start // block
    nblocks = -(-lengths // block)

    # arena bases in block units (same arithmetic as build_memory_plan)
    ext_in_blk = layout.footprint // block + 2
    ext_out_blk = ext_in_blk + EXT_OUT_SPAN // block
    # shared-plan invariants: both arena bases must match the compiler's
    assert ext_in_blk * block == compiler._ext_in_base
    assert ext_out_blk * block == compiler._ext_out_base

    blocks = trace.blocks
    n = blocks.shape[0]
    obj = np.empty(n, dtype=np.int64)
    off = np.empty(n, dtype=np.int64)
    is_out = blocks >= ext_out_blk
    is_in = ~is_out & (blocks >= ext_in_blk)
    internal = ~(is_out | is_in)
    obj[is_out] = n_obj + 1
    off[is_out] = blocks[is_out] - ext_out_blk
    obj[is_in] = n_obj
    off[is_in] = blocks[is_in] - ext_in_blk
    if internal.any():
        nz = np.flatnonzero(nblocks > 0)
        nz_starts = starts[nz]  # strictly increasing: seed allocation order
        idx = np.searchsorted(nz_starts, blocks[internal], side="right") - 1
        obj[internal] = nz[idx]
        off[internal] = blocks[internal] - nz_starts[idx]
    return PlacementInstance(
        graph=graph,
        block=block,
        trace=trace,
        objects=objects,
        lengths=lengths,
        nblocks=nblocks,
        obj_of_access=obj,
        block_offset=off,
    )


# ----------------------------------------------------------------------
# block-remap cost model
# ----------------------------------------------------------------------
def _order_ids(instance: PlacementInstance, order: Sequence[ObjectKey]) -> List[int]:
    """Validate ``order`` as a permutation of the instance's objects."""
    index = {key: i for i, key in enumerate(instance.objects)}
    ids: List[int] = []
    seen = set()
    for key in order:
        oid = index.get(key)
        if oid is None:
            raise LayoutError(f"unknown placement object {key!r}")
        if oid in seen:
            raise LayoutError(f"placement repeats object {key!r}")
        seen.add(oid)
        ids.append(oid)
    if len(ids) != instance.n_objects:
        raise LayoutError(
            f"placement covers {len(ids)} of {instance.n_objects} objects"
        )
    return ids


def _placed_starts(instance: PlacementInstance, order_ids: Sequence[int]) -> np.ndarray:
    """New start block per object id (plus the two stream pseudo-objects),
    replaying the aligned-cursor allocator over the candidate order."""
    block = instance.block
    lengths = instance.lengths
    starts = np.empty(instance.n_objects + 2, dtype=np.int64)
    cursor = 0
    for oid in order_ids:
        rem = cursor % block
        if rem:
            cursor += block - rem
        starts[oid] = cursor // block
        cursor += int(lengths[oid])
    ext_in = cursor // block + 2
    starts[instance.n_objects] = ext_in
    starts[instance.n_objects + 1] = ext_in + EXT_OUT_SPAN // block
    return starts


def remap_blocks(
    instance: PlacementInstance, order: Sequence[ObjectKey]
) -> np.ndarray:
    """The exact block trace ``order`` would compile to — via one gather."""
    starts = _placed_starts(instance, _order_ids(instance, order))
    return starts[instance.obj_of_access] + instance.block_offset


def remap_trace(instance: PlacementInstance, order: Sequence[ObjectKey]):
    """A full :class:`~repro.runtime.compiled.CompiledTrace` under ``order``
    (same phases/firings metadata; only addresses move), ready for
    :func:`~repro.runtime.compiled.simulate_trace`."""
    from dataclasses import replace

    return replace(instance.trace, blocks=remap_blocks(instance, order))


def placement_cost(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    geometry: CacheGeometry,
    policy: str = "direct",
) -> int:
    """Misses of ``policy`` at ``geometry`` under the candidate placement.

    Exact, not an estimate: the remapped trace is bit-identical to what the
    compiler would produce for this placement, and the replay kernels agree
    miss-for-miss with the stepwise simulators.
    """
    from repro.runtime.replay import replay_misses

    return replay_misses(remap_blocks(instance, order), [geometry], policy=policy)[0]


# ----------------------------------------------------------------------
# temporal-affinity conflict graph
# ----------------------------------------------------------------------
def conflict_graph(
    instance: PlacementInstance, window: int = 8
) -> Dict[Tuple[int, int], float]:
    """Edge weights between object ids co-scheduled within ``window`` runs.

    The trace's object sequence is run-length compressed (a firing touches
    each object in one contiguous burst); two distinct objects whose runs
    fall within ``window`` positions of each other get an edge, weighted
    ``window - gap + 1`` so immediate neighbours dominate.  Stream arenas
    are excluded — they are not placeable.  High weight = mapping the pair
    to the same set is expensive.
    """
    if window < 1:
        raise LayoutError(f"conflict window must be >= 1, got {window}")
    n_obj = instance.n_objects
    seq = instance.obj_of_access[instance.obj_of_access < n_obj]
    weights: Dict[Tuple[int, int], float] = {}
    if seq.shape[0] == 0:
        return weights
    keep = np.ones(seq.shape[0], dtype=bool)
    keep[1:] = seq[1:] != seq[:-1]
    runs = seq[keep]
    for gap in range(1, min(window, runs.shape[0] - 1) + 1):
        a, b = runs[gap:], runs[:-gap]
        mask = a != b
        if not mask.any():
            continue
        lo = np.minimum(a[mask], b[mask])
        hi = np.maximum(a[mask], b[mask])
        pair_key, counts = np.unique(lo * n_obj + hi, return_counts=True)
        w = float(window - gap + 1)
        for k, c in zip(pair_key.tolist(), counts.tolist()):
            edge = (k // n_obj, k % n_obj)
            weights[edge] = weights.get(edge, 0.0) + w * c
    return weights


def _conflict_sets(geometry: CacheGeometry, policy: str) -> int:
    """Number of conflict classes the organization induces: frames for a
    direct-mapped target, sets otherwise (1 = fully associative = none)."""
    if policy == "direct" or geometry.ways == 1:
        return geometry.n_blocks
    return geometry.sets


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def greedy_color_order(
    instance: PlacementInstance,
    geometry: CacheGeometry,
    policy: str = "direct",
    window: int = 8,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
) -> List[ObjectKey]:
    """Greedy set-coloring: grow the placement left to right, appending at
    each cursor position the unplaced object whose set span (its blocks
    modulo the set count) has the least conflict weight against the objects
    already covering those sets.  Hot objects (highest total conflict
    weight) break ties first, so they claim clean sets early.
    """
    sets = _conflict_sets(geometry, policy)
    if sets <= 1:
        return list(instance.objects)
    if weights is None:
        weights = conflict_graph(instance, window=window)
    n_obj = instance.n_objects
    adj: List[Dict[int, float]] = [{} for _ in range(n_obj)]
    degree = [0.0] * n_obj
    for (a, b), w in weights.items():
        adj[a][b] = adj[a].get(b, 0.0) + w
        adj[b][a] = adj[b].get(a, 0.0) + w
        degree[a] += w
        degree[b] += w

    block = instance.block
    nblocks = instance.nblocks
    lengths = instance.lengths
    covering: List[set] = [set() for _ in range(sets)]  # set idx -> object ids
    remaining = list(range(n_obj))
    # hottest first so ties (empty sets early on) favour hot objects
    remaining.sort(key=lambda o: (-degree[o], o))
    order_ids: List[int] = []
    cursor = 0
    while remaining:
        rem = cursor % block
        aligned = cursor + (block - rem if rem else 0)
        start_blk = aligned // block
        best_oid, best_cost, best_pos = None, None, 0
        for pos, oid in enumerate(remaining):
            nb = int(nblocks[oid])
            cost = 0.0
            neighbours = adj[oid]
            if neighbours and nb:
                for j in range(min(nb, sets)):
                    s = (start_blk + j) % sets
                    for other in covering[s]:
                        cost += neighbours.get(other, 0.0)
            if best_cost is None or cost < best_cost:
                best_oid, best_cost, best_pos = oid, cost, pos
        order_ids.append(best_oid)
        remaining.pop(best_pos)
        for j in range(min(int(nblocks[best_oid]), sets)):
            covering[(start_blk + j) % sets].add(best_oid)
        cursor = aligned + int(lengths[best_oid])
    return [instance.objects[oid] for oid in order_ids]


def swap_refine(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    geometry: CacheGeometry,
    policy: str = "direct",
    window: int = 8,
    budget: int = 400,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
) -> Tuple[List[ObjectKey], int, int]:
    """FLIP-style pairwise-swap local search on the true remap cost.

    Starting from ``order``, repeatedly try swapping two objects' positions
    and keep any swap that lowers the actual miss count of ``policy`` at
    ``geometry`` (the exact cost model, so accepted moves are real
    improvements, never estimator noise).  Pairs are visited heaviest
    conflict edge first — on sparse conflict graphs most of the gain lives
    in a few hot pairs — and the search stops at a local optimum or after
    ``budget`` cost evaluations.  Returns ``(order, cost, evaluations)``.
    """
    if weights is None:
        weights = conflict_graph(instance, window=window)
    ids = _order_ids(instance, order)
    pos_of = {oid: p for p, oid in enumerate(ids)}
    n_obj = instance.n_objects
    # heavy conflict pairs first, then every remaining pair for completeness
    ranked = sorted(weights, key=lambda e: (-weights[e], e))
    seen = set(ranked)
    ranked += [
        (a, b) for a in range(n_obj) for b in range(a + 1, n_obj)
        if (a, b) not in seen
    ]

    def cost_of(candidate_ids: Sequence[int]) -> int:
        from repro.runtime.replay import replay_misses

        starts = _placed_starts(instance, candidate_ids)
        blocks = starts[instance.obj_of_access] + instance.block_offset
        return replay_misses(blocks, [geometry], policy=policy)[0]

    cost = cost_of(ids)
    evals = 1
    improved = True
    while improved and evals < budget:
        improved = False
        for a, b in ranked:
            if evals >= budget:
                break
            if instance.nblocks[a] == 0 and instance.nblocks[b] == 0:
                continue  # zero-length objects own no blocks: swap is a no-op
            i, j = pos_of[a], pos_of[b]
            ids[i], ids[j] = ids[j], ids[i]
            trial = cost_of(ids)
            evals += 1
            if trial < cost:
                cost = trial
                pos_of[a], pos_of[b] = j, i
                improved = True
            else:
                ids[i], ids[j] = ids[j], ids[i]
    return [instance.objects[oid] for oid in ids], cost, evals


# ----------------------------------------------------------------------
# strategy registry
# ----------------------------------------------------------------------
_STRATEGIES: Dict[str, Callable] = {}


def register_placement(name: str, fn: Callable) -> None:
    """Register a placement strategy: ``fn(instance, geometry, policy=...,
    window=..., budget=...) -> order`` (a full object placement)."""
    _STRATEGIES[name] = fn


def get_placement(name: str) -> Callable:
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise LayoutError(
            f"unknown placement strategy {name!r}; "
            f"registered: {sorted(_STRATEGIES)}"
        ) from None


def available_placements() -> Tuple[str, ...]:
    return tuple(sorted(_STRATEGIES))


def _topo_strategy(instance, geometry, policy="direct", window=8, budget=400):
    return list(instance.objects)


def _color_strategy(instance, geometry, policy="direct", window=8, budget=400):
    return greedy_color_order(instance, geometry, policy=policy, window=window)


def _swap_strategy(instance, geometry, policy="direct", window=8, budget=400):
    if _conflict_sets(geometry, policy) <= 1:
        # fully associative: misses are provably placement-invariant, so
        # burning the budget on full-trace replays cannot ever improve
        return list(instance.objects)
    weights = conflict_graph(instance, window=window)
    start = greedy_color_order(
        instance, geometry, policy=policy, window=window, weights=weights
    )
    order, _, _ = swap_refine(
        instance, start, geometry, policy=policy, window=window,
        budget=budget, weights=weights,
    )
    return order


register_placement("topo", _topo_strategy)
register_placement("color", _color_strategy)
register_placement("swap", _swap_strategy)


# ----------------------------------------------------------------------
# top-level entry points
# ----------------------------------------------------------------------
@dataclass
class PlacementResult:
    """An optimized placement and its exact cost accounting.

    ``order`` feeds straight into ``placement=`` of
    :func:`~repro.runtime.compiled.compile_trace`,
    :meth:`~repro.runtime.executor.Executor.measure`, or
    :meth:`~repro.mem.layout.MemoryLayout.place_graph`.
    """

    strategy: str
    order: List[ObjectKey]
    cost: int
    seed_cost: int

    @property
    def improvement(self) -> float:
        """Fraction of the seed layout's misses removed."""
        return 1.0 - self.cost / self.seed_cost if self.seed_cost else 0.0


def optimize_instance(
    instance: PlacementInstance,
    geometry: CacheGeometry,
    strategy: str = "swap",
    policy: str = "direct",
    window: int = 8,
    budget: int = 400,
) -> PlacementResult:
    """Run one registered strategy against a prebuilt instance.

    Never worse than the seed: if the strategy's order scores above the
    seed layout, the seed order is returned instead.
    """
    fn = get_placement(strategy)
    seed_order = list(instance.objects)
    seed_cost = placement_cost(instance, seed_order, geometry, policy=policy)
    order = fn(instance, geometry, policy=policy, window=window, budget=budget)
    cost = placement_cost(instance, order, geometry, policy=policy)
    if cost > seed_cost:
        order, cost = seed_order, seed_cost
    return PlacementResult(strategy=strategy, order=order, cost=cost, seed_cost=seed_cost)


def optimize_placement(
    graph: StreamGraph,
    schedule,
    geometry: CacheGeometry,
    strategy: str = "swap",
    policy: str = "direct",
    capacities: Optional[Dict[int, int]] = None,
    order: Optional[Iterable[str]] = None,
    window: int = 8,
    budget: int = 400,
) -> PlacementResult:
    """One-shot convenience: compile the seed trace, search, return the
    best placement for ``policy`` at ``geometry``."""
    instance = build_instance(
        graph, schedule, geometry.block, capacities=capacities, order=order
    )
    return optimize_instance(
        instance, geometry, strategy=strategy, policy=policy,
        window=window, budget=budget,
    )
