"""Conflict-aware placement: optimize the memory layout against set conflicts.

A6 established the motivating fact: under the paper's fully-associative
model, layout is provably irrelevant (only the *set* of blocks touched
matters), but under direct-mapped and low-associativity organizations,
conflict misses are large and swing with layout in non-obvious ways —
conflicts depend on addresses modulo the set count, not on contiguity.
This module closes that loop: it searches the placement space
:meth:`repro.mem.layout.MemoryLayout.place_graph` exposes (any interleaving
of state regions and channel buffers, always block-aligned and
non-overlapping by construction, plus deliberate block-granular *gaps*
before chosen objects) for a layout that minimizes conflict misses at one
or several target (geometry, policy) pairs.

Three ideas make the search cheap and exact:

* **Block-remap cost model** — a placement is an object permutation plus a
  per-object gap vector, and every object's intra-region block offsets
  survive any permutation or padding (all regions are block-aligned, gaps
  are whole blocks), so a candidate's block trace is
  ``new_start[obj_of_access] + block_offset``: one gather over the trace
  compiled *once* under the seed layout, never a re-execution.  The score
  is then the actual miss count of the replay kernel
  (:func:`repro.runtime.replay.replay_misses`) on the remapped trace —
  bit-identical to recompiling under the candidate layout and simulating
  stepwise (``tests/test_placement.py`` asserts this exactly, gaps
  included).  External stream arenas ride along as two pseudo-objects whose
  bases shift with the candidate footprint, reproducing
  :func:`~repro.runtime.executor.build_memory_plan` arithmetic to the word.
* **Temporal-affinity conflict graph** — objects co-scheduled within a
  short reuse window of the trace are the ones that must not collide in a
  set.  The graph is extracted from the run-length-compressed object
  sequence of the compiled trace; nearer co-occurrences weigh more.
* **Strategies behind a registry** (the shape is classic: assigning hot
  objects to capacity-limited sets is capacitated facility location, and
  FLIP-style swap local search is cheap and effective on sparse conflict
  graphs): ``"color"`` greedily appends, at each cursor position, the
  unplaced object whose set span conflicts least with what is already
  placed (greedy set-coloring of the conflict graph, scheme-aware under
  xor-indexed targets); ``"swap"`` refines that order by pairwise-swap
  local search — interleaved with *gap moves* (±1 block of padding before
  an object, bounded by ``gap_budget``) — scored with the *true* remap
  cost model, visiting heavy conflict pairs first.  ``"topo"`` is the seed
  topological layout, kept as the baseline.

**Multi-geometry objective.**  A7 showed a layout tuned for the
direct-mapped index can *regress* at 2-way — unacceptable when one binary
must deploy across cache organizations.  ``targets=[(geometry, policy,
weight), ...]`` scores candidates by the weighted miss sum across all
targets, and :func:`optimize_instance` only accepts a candidate that is
no worse than the seed **at every individual target** (falling back to
the seed otherwise), so optimized layouts are deployable: experiment A9
(:func:`repro.analysis.sweeps.ablation_a9_cross_geometry`) measures the
cross-geometry behaviour, including whether xor-indexed (skewed) caches
beat layout tuning outright.

:func:`optimize_placement` never returns a placement worse than the seed
(at any target), so callers can enable it unconditionally.  Wire-up:
experiments A7/A9, CLI ``schedule --layout {topo,color,swap}
[--layout-targets SPEC] [--gap-budget N] [--index-scheme {mod,xor}]``,
``benchmarks/bench_placement.py``, and ``examples/layout_tuning.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.base import CacheGeometry
from repro.errors import LayoutError
from repro.graphs.sdf import StreamGraph
from repro.mem.layout import ObjectKey, layout_objects
from repro.obs import core as obs
from repro.obs import names as obs_names
from repro.runtime.executor import EXT_OUT_SPAN

if TYPE_CHECKING:  # import cycle: the runtime layer sits above repro.mem
    from repro.runtime.compiled import CompiledTrace
    from repro.runtime.schedule import Schedule

__all__ = [
    "PlacementInstance",
    "PlacementResult",
    "build_instance",
    "normalize_targets",
    "remap_blocks",
    "remap_trace",
    "placement_cost",
    "placement_costs",
    "conflict_graph",
    "greedy_color_order",
    "RefineStats",
    "swap_refine",
    "register_placement",
    "get_placement",
    "available_placements",
    "optimize_instance",
    "optimize_placement",
]

#: One optimization target: (geometry, policy name, positive weight).
PlacementTarget = Tuple[CacheGeometry, str, float]


@dataclass
class PlacementInstance:
    """One schedule's compiled trace, factored for placement search.

    ``objects`` is the seed placement order (index = object id);
    ``obj_of_access[i]`` is the object id access ``i`` touches, with two
    pseudo-ids past the real objects for the external input / output stream
    arenas, and ``block_offset[i]`` the access's block offset inside that
    object.  Together with per-object block counts this is everything a
    candidate (order, gaps) needs to reproduce its exact block trace.
    """

    graph: StreamGraph
    block: int
    trace: "CompiledTrace"
    objects: Tuple[ObjectKey, ...]
    lengths: np.ndarray
    nblocks: np.ndarray
    obj_of_access: np.ndarray
    block_offset: np.ndarray

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    def index_of(self, key: ObjectKey) -> int:
        try:
            return self.objects.index(key)
        except ValueError:
            raise LayoutError(f"unknown placement object {key!r}") from None


def build_instance(
    graph: StreamGraph,
    schedule: "Schedule",
    block: int,
    capacities: Optional[Dict[int, int]] = None,
    order: Optional[Iterable[str]] = None,
    count_external: bool = True,
) -> PlacementInstance:
    """Compile ``schedule`` once under the seed layout and factor the trace.

    ``order`` is the seed state order (the baseline the optimizer must
    beat); ``capacities`` defaults to the schedule's own, exactly like
    :func:`repro.runtime.compiled.compile_trace`.
    """
    from repro.runtime.compiled import TraceCompiler

    if capacities is None:
        capacities = getattr(schedule, "capacities", None)
    if order is not None:
        order = list(order)  # consumed twice below: compiler and layout_objects
    compiler = TraceCompiler(
        graph, block, capacities=capacities, layout_order=order,
        count_external=count_external,
    )
    trace = compiler.compile(schedule)
    layout = compiler.layout
    objects = tuple(layout_objects(graph, order=order))

    n_obj = len(objects)
    lengths = np.empty(n_obj, dtype=np.int64)
    starts = np.empty(n_obj, dtype=np.int64)
    for i, (kind, key) in enumerate(objects):
        region = layout.state_region(key) if kind == "state" else layout.buffer_region(key)
        lengths[i] = region.length
        starts[i] = region.start // block
    nblocks = -(-lengths // block)

    # arena bases in block units (same arithmetic as build_memory_plan)
    ext_in_blk = layout.footprint // block + 2
    ext_out_blk = ext_in_blk + EXT_OUT_SPAN // block
    # shared-plan invariants: both arena bases must match the compiler's
    assert ext_in_blk * block == compiler._ext_in_base
    assert ext_out_blk * block == compiler._ext_out_base

    blocks = trace.blocks
    n = blocks.shape[0]
    obj = np.empty(n, dtype=np.int64)
    off = np.empty(n, dtype=np.int64)
    is_out = blocks >= ext_out_blk
    is_in = ~is_out & (blocks >= ext_in_blk)
    internal = ~(is_out | is_in)
    obj[is_out] = n_obj + 1
    off[is_out] = blocks[is_out] - ext_out_blk
    obj[is_in] = n_obj
    off[is_in] = blocks[is_in] - ext_in_blk
    if internal.any():
        nz = np.flatnonzero(nblocks > 0)
        nz_starts = starts[nz]  # strictly increasing: seed allocation order
        idx = np.searchsorted(nz_starts, blocks[internal], side="right") - 1
        obj[internal] = nz[idx]
        off[internal] = blocks[internal] - nz_starts[idx]
    return PlacementInstance(
        graph=graph,
        block=block,
        trace=trace,
        objects=objects,
        lengths=lengths,
        nblocks=nblocks,
        obj_of_access=obj,
        block_offset=off,
    )


# ----------------------------------------------------------------------
# block-remap cost model
# ----------------------------------------------------------------------
def _order_ids(instance: PlacementInstance, order: Sequence[ObjectKey]) -> List[int]:
    """Validate ``order`` as a permutation of the instance's objects."""
    index = {key: i for i, key in enumerate(instance.objects)}
    ids: List[int] = []
    seen = set()
    for key in order:
        oid = index.get(key)
        if oid is None:
            raise LayoutError(f"unknown placement object {key!r}")
        if oid in seen:
            raise LayoutError(f"placement repeats object {key!r}")
        seen.add(oid)
        ids.append(oid)
    if len(ids) != instance.n_objects:
        raise LayoutError(
            f"placement covers {len(ids)} of {instance.n_objects} objects"
        )
    return ids


def _gap_vector(
    instance: PlacementInstance, gaps: Optional[Dict[ObjectKey, int]]
) -> Optional[np.ndarray]:
    """Validate a gaps map into a per-object-id block-count vector.

    ``None``/empty means no padding (the pure-permutation search space).
    Every key must name an instance object; every value must be a
    non-negative whole number of blocks.
    """
    if not gaps:
        return None
    vec = np.zeros(instance.n_objects, dtype=np.int64)
    for key, blocks in gaps.items():
        oid = instance.index_of(key)
        if not isinstance(blocks, (int, np.integer)) or isinstance(blocks, bool) \
                or blocks < 0:
            raise LayoutError(
                f"gap for {key!r} must be a non-negative block count, "
                f"got {blocks!r}"
            )
        vec[oid] = int(blocks)
    return vec


def _placed_starts(
    instance: PlacementInstance,
    order_ids: Sequence[int],
    gap_vec: Optional[np.ndarray] = None,
) -> np.ndarray:
    """New start block per object id (plus the two stream pseudo-objects),
    replaying the aligned-cursor allocator — gap insertion included — over
    the candidate order."""
    block = instance.block
    lengths = instance.lengths
    starts = np.empty(instance.n_objects + 2, dtype=np.int64)
    cursor = 0
    for oid in order_ids:
        rem = cursor % block
        if rem:
            cursor += block - rem
        if gap_vec is not None:
            cursor += int(gap_vec[oid]) * block
        starts[oid] = cursor // block
        cursor += int(lengths[oid])
    ext_in = cursor // block + 2
    starts[instance.n_objects] = ext_in
    starts[instance.n_objects + 1] = ext_in + EXT_OUT_SPAN // block
    return starts


def remap_blocks(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    gaps: Optional[Dict[ObjectKey, int]] = None,
) -> np.ndarray:
    """The exact block trace ``(order, gaps)`` would compile to — one gather."""
    starts = _placed_starts(
        instance, _order_ids(instance, order), _gap_vector(instance, gaps)
    )
    return starts[instance.obj_of_access] + instance.block_offset


def remap_trace(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    gaps: Optional[Dict[ObjectKey, int]] = None,
) -> "CompiledTrace":
    """A full :class:`~repro.runtime.compiled.CompiledTrace` under ``(order,
    gaps)`` (same phases/firings metadata; only addresses move), ready for
    :func:`~repro.runtime.compiled.simulate_trace`."""
    from dataclasses import replace

    return replace(instance.trace, blocks=remap_blocks(instance, order, gaps=gaps))


def placement_cost(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    geometry: CacheGeometry,
    policy: str = "direct",
    gaps: Optional[Dict[ObjectKey, int]] = None,
    chunk_words: Optional[int] = None,
) -> int:
    """Misses of ``policy`` at ``geometry`` under the candidate placement.

    Exact, not an estimate: the remapped trace is bit-identical to what the
    compiler would produce for this placement (gaps included), and the
    replay kernels agree miss-for-miss with the stepwise simulators.
    ``chunk_words`` scores through the streaming replay
    (:mod:`repro.runtime.streaming`) in bounded-memory chunks — the same
    count, by the streaming differential contract.
    """
    return _target_misses(
        remap_blocks(instance, order, gaps=gaps),
        [(geometry, policy, 1.0)],
        chunk_words=chunk_words,
    )[0]


def normalize_targets(
    targets: Sequence[PlacementTarget], block: Optional[int] = None
) -> List[PlacementTarget]:
    """Validate a multi-geometry objective spec.

    Each entry is ``(geometry, policy, weight)`` with a positive finite
    weight; all geometries must share one block size (``block`` when given
    — the instance's — since one compiled trace scores every target).
    """
    out: List[PlacementTarget] = []
    if not targets:
        raise LayoutError("targets must name at least one (geometry, policy, weight)")
    for entry in targets:
        try:
            geometry, policy, weight = entry
        except (TypeError, ValueError):
            raise LayoutError(
                f"each target is a (geometry, policy, weight) triple, got {entry!r}"
            ) from None
        if not isinstance(geometry, CacheGeometry):
            raise LayoutError(f"target geometry must be a CacheGeometry, got {geometry!r}")
        weight = float(weight)
        if not np.isfinite(weight) or weight <= 0:
            raise LayoutError(f"target weight must be positive and finite, got {weight!r}")
        if block is not None and geometry.block != block:
            raise LayoutError(
                f"target geometry block {geometry.block} does not match the "
                f"instance block {block}"
            )
        out.append((geometry, str(policy), weight))
    return out


def _target_misses(
    blocks: np.ndarray,
    targets: Sequence[PlacementTarget],
    chunk_words: Optional[int] = None,
) -> List[int]:
    """Per-target miss counts of one remapped trace, sharing replay passes
    across targets of the same policy (the kernels memoize per organization).
    ``chunk_words`` swaps the monolithic kernels for the streaming ones —
    same counts, O(``chunk_words``) peak memory per pass."""
    from repro.runtime.replay import replay_misses

    by_policy: Dict[str, List[int]] = {}
    for i, (_geom, policy, _w) in enumerate(targets):
        by_policy.setdefault(policy, []).append(i)
    out: List[int] = [0] * len(targets)
    for policy, idxs in by_policy.items():
        geoms = [targets[i][0] for i in idxs]
        if chunk_words is not None:
            from repro.runtime.streaming import ArrayChunkSource, stream_stats

            source = ArrayChunkSource(blocks, chunk_words=chunk_words)
            misses = [m for m, _counts in stream_stats(source, geoms, policy)]
        else:
            misses = replay_misses(blocks, geoms, policy=policy)
        for i, m in zip(idxs, misses):
            out[i] = m
    return out


def placement_costs(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    targets: Sequence[PlacementTarget],
    gaps: Optional[Dict[ObjectKey, int]] = None,
) -> List[int]:
    """Per-target miss counts of the candidate placement (multi-geometry
    form of :func:`placement_cost`; one remap gather, shared replay passes)."""
    return _target_misses(
        remap_blocks(instance, order, gaps=gaps),
        normalize_targets(targets, block=instance.block),
    )


# ----------------------------------------------------------------------
# temporal-affinity conflict graph
# ----------------------------------------------------------------------
def conflict_graph(
    instance: PlacementInstance, window: int = 8
) -> Dict[Tuple[int, int], float]:
    """Edge weights between object ids co-scheduled within ``window`` runs.

    The trace's object sequence is run-length compressed (a firing touches
    each object in one contiguous burst); two distinct objects whose runs
    fall within ``window`` positions of each other get an edge, weighted
    ``window - gap + 1`` so immediate neighbours dominate.  Stream arenas
    are excluded — they are not placeable.  High weight = mapping the pair
    to the same set is expensive.
    """
    if window < 1:
        raise LayoutError(f"conflict window must be >= 1, got {window}")
    n_obj = instance.n_objects
    seq = instance.obj_of_access[instance.obj_of_access < n_obj]
    weights: Dict[Tuple[int, int], float] = {}
    if seq.shape[0] == 0:
        return weights
    keep = np.ones(seq.shape[0], dtype=bool)
    keep[1:] = seq[1:] != seq[:-1]
    runs = seq[keep]
    for gap in range(1, min(window, runs.shape[0] - 1) + 1):
        a, b = runs[gap:], runs[:-gap]
        mask = a != b
        if not mask.any():
            continue
        lo = np.minimum(a[mask], b[mask])
        hi = np.maximum(a[mask], b[mask])
        pair_key, counts = np.unique(lo * n_obj + hi, return_counts=True)
        w = float(window - gap + 1)
        for k, c in zip(pair_key.tolist(), counts.tolist()):
            edge = (k // n_obj, k % n_obj)
            weights[edge] = weights.get(edge, 0.0) + w * c
    return weights


def _conflict_sets(geometry: CacheGeometry, policy: str) -> int:
    """Number of conflict classes the organization induces: frames for a
    direct-mapped target, sets otherwise (1 = fully associative = none)."""
    if policy == "direct" or geometry.ways == 1:
        return geometry.n_blocks
    return geometry.sets


def _primary_target(targets: Sequence[PlacementTarget]) -> PlacementTarget:
    """The heaviest-weight target — what the constructive heuristics aim at
    (ties break toward the most conflict-prone organization)."""
    return max(targets, key=lambda t: (t[2], _conflict_sets(t[0], t[1])))


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def greedy_color_order(
    instance: PlacementInstance,
    geometry: CacheGeometry,
    policy: str = "direct",
    window: int = 8,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
) -> List[ObjectKey]:
    """Greedy set-coloring: grow the placement left to right, appending at
    each cursor position the unplaced object whose set span (its blocks
    hashed through the geometry's index scheme) has the least conflict
    weight against the objects already covering those sets.  Hot objects
    (highest total conflict weight) break ties first, so they claim clean
    sets early.
    """
    sets = _conflict_sets(geometry, policy)
    if sets <= 1:
        return list(instance.objects)
    if weights is None:
        weights = conflict_graph(instance, window=window)
    n_obj = instance.n_objects
    adj: List[Dict[int, float]] = [{} for _ in range(n_obj)]
    degree = [0.0] * n_obj
    for (a, b), w in weights.items():
        adj[a][b] = adj[a].get(b, 0.0) + w
        adj[b][a] = adj[b].get(a, 0.0) + w
        degree[a] += w
        degree[b] += w

    block = instance.block
    nblocks = instance.nblocks
    lengths = instance.lengths
    set_ix = lambda blk: geometry.set_of(blk, sets)  # scheme-aware (mod/xor)
    covering: List[set] = [set() for _ in range(sets)]  # set idx -> object ids
    remaining = list(range(n_obj))
    # hottest first so ties (empty sets early on) favour hot objects
    remaining.sort(key=lambda o: (-degree[o], o))
    order_ids: List[int] = []
    cursor = 0
    while remaining:
        rem = cursor % block
        aligned = cursor + (block - rem if rem else 0)
        start_blk = aligned // block
        best_oid, best_cost, best_pos = None, None, 0
        for pos, oid in enumerate(remaining):
            nb = int(nblocks[oid])
            cost = 0.0
            neighbours = adj[oid]
            if neighbours and nb:
                for j in range(min(nb, sets)):
                    s = set_ix(start_blk + j)
                    for other in covering[s]:
                        cost += neighbours.get(other, 0.0)
            if best_cost is None or cost < best_cost:
                best_oid, best_cost, best_pos = oid, cost, pos
        order_ids.append(best_oid)
        remaining.pop(best_pos)
        for j in range(min(int(nblocks[best_oid]), sets)):
            covering[set_ix(start_blk + j)].add(best_oid)
        cursor = aligned + int(lengths[best_oid])
    return [instance.objects[oid] for oid in order_ids]


@dataclass(frozen=True)
class RefineStats:
    """Telemetry of one :func:`swap_refine` search — the structured
    replacement for the bare ``evals`` integer it used to return.

    ``trajectory[0]`` is the seed cost; each further point is the best
    cost after one improving round, so ``trajectory[-1]`` equals the
    returned cost and ``rounds == len(trajectory) - 1``.  The same values
    are recorded as obs metrics (``placement.evals`` / ``placement.rounds``
    counters, the ``placement.cost`` series) while instrumentation is
    enabled.  ``int(stats)`` still yields the evaluation count for callers
    that only budget.
    """

    evals: int
    rounds: int
    trajectory: Tuple[float, ...]

    def __int__(self) -> int:
        return self.evals


def _batched_refine(
    instance: PlacementInstance,
    scorer: object,
    ids: List[int],
    gap_vec: np.ndarray,
    ranked: Sequence[Tuple[int, int]],
    hot: Sequence[int],
    gap_budget: int,
    gap_total: int,
    cost: float,
    evals: int,
    budget: int,
    batch: int,
    trajectory: List[float],
) -> Tuple[float, int]:
    """Steepest-descent-within-batch local search (``swap_refine(batch>1)``).

    Enumerates every move legal in the *current* state (ranked swaps, then
    ±1 gap moves), scores ``batch`` of them at a time through ``scorer``
    (which may fan over a process pool), applies the best improving one,
    and regenerates the move list.  Deterministic in ``batch`` alone: the
    scorer is bit-identical across backends, candidate order is fixed, and
    ties break to the earliest candidate — so the trajectory, final state,
    and evaluation count never depend on where scoring ran.  Mutates
    ``ids``/``gap_vec`` in place and appends each improving round's cost
    to ``trajectory``; returns ``(cost, evals)``.
    """
    pos_of = {oid: p for p, oid in enumerate(ids)}
    improved = True
    while improved and evals < budget:
        improved = False
        moves: List[Tuple[str, int, int]] = []
        for a, b in ranked:
            if instance.nblocks[a] == 0 and instance.nblocks[b] == 0:
                continue  # zero-length objects own no blocks: swap is a no-op
            moves.append(("swap", a, b))
        if gap_budget:
            for oid in hot:
                if gap_total < gap_budget:
                    moves.append(("gap", oid, 1))
                if gap_vec[oid] > 0:
                    moves.append(("gap", oid, -1))
        pos = 0
        while pos < len(moves) and evals < budget:
            chunk = moves[pos:pos + batch][: budget - evals]
            pos += len(chunk)
            starts_list: List[np.ndarray] = []
            for kind, x, y in chunk:
                if kind == "swap":
                    i, j = pos_of[x], pos_of[y]
                    ids[i], ids[j] = ids[j], ids[i]
                    starts_list.append(_placed_starts(instance, ids, gap_vec))
                    ids[i], ids[j] = ids[j], ids[i]
                else:
                    gap_vec[x] += y
                    starts_list.append(_placed_starts(instance, ids, gap_vec))
                    gap_vec[x] -= y
            costs = scorer.score(starts_list)  # type: ignore[attr-defined]
            evals += len(chunk)
            best_k = -1
            best_c = cost
            for k, c in enumerate(costs):
                if c < best_c:  # strict: ties keep the earlier candidate
                    best_k, best_c = k, c
            if best_k >= 0:
                kind, x, y = chunk[best_k]
                if kind == "swap":
                    i, j = pos_of[x], pos_of[y]
                    ids[i], ids[j] = ids[j], ids[i]
                    pos_of[x], pos_of[y] = j, i
                else:
                    gap_vec[x] += y
                    gap_total += y
                cost = best_c
                improved = True
                break  # state changed: regenerate the move list
        if improved:
            trajectory.append(cost)
    return cost, evals


def swap_refine(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    geometry: Optional[CacheGeometry] = None,
    policy: str = "direct",
    window: int = 8,
    budget: int = 400,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0,
    gaps: Optional[Dict[ObjectKey, int]] = None,
    batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_words: Optional[int] = None,
) -> Tuple[List[ObjectKey], Dict[ObjectKey, int], float, RefineStats]:
    """FLIP-style local search over (order, gaps) on the true remap cost.

    Starting from ``order`` (and optionally ``gaps``), repeatedly try two
    move kinds and keep any that lowers the objective — the actual miss
    count at ``(geometry, policy)``, or the weighted miss sum over
    ``targets`` when given (the exact cost model either way, so accepted
    moves are real improvements, never estimator noise):

    * **swaps** of two objects' positions, visited heaviest conflict edge
      first — on sparse conflict graphs most of the gain lives in a few
      hot pairs — then every remaining pair for completeness;
    * **gap moves** (when ``gap_budget > 0``): ±1 block of deliberate
      padding before an object, hottest objects first, with the total gap
      block count never exceeding ``gap_budget`` (the address-space
      budget).

    The search stops at a local optimum or after ``budget`` cost
    evaluations.  Returns ``(order, gaps, cost, stats)``; ``gaps`` maps
    object keys to their padding in blocks (zero entries omitted), and
    ``stats`` is a :class:`RefineStats` carrying the evaluation count, the
    number of improving rounds, and the per-round best-cost trajectory
    (``int(stats)`` recovers the old bare ``evals``).  The same telemetry
    is recorded as obs metrics when :mod:`repro.obs` is enabled.

    **Parallel scoring.**  ``batch > 1`` switches to steepest-descent over
    batches: the next ``batch`` untried moves are scored together (through
    a :class:`repro.runtime.backend.CandidateScorer`, which ships the remap
    arrays to a process pool once via shared memory when
    ``backend="process"``) and the best improving one is applied.  The
    search *trajectory* depends only on ``batch`` — never on ``backend`` or
    ``workers``, which only choose where candidate scoring runs — so serial
    and process runs of the same ``batch`` return identical placements at
    an identical evaluation count, and the process pool buys pure
    wall-time.  ``batch=1`` (default) is the historical first-improvement
    loop, unchanged.  ``chunk_words`` scores candidates through the
    streaming replay — the counts are bit-identical, so the trajectory
    (and :class:`RefineStats`) is byte-for-byte the monolithic one at equal
    ``batch``; ``tests/test_streaming.py`` pins exactly that.
    """
    if gap_budget < 0:
        raise LayoutError(f"gap_budget must be >= 0, got {gap_budget}")
    if targets is None:
        if geometry is None:
            raise LayoutError("swap_refine needs a geometry or explicit targets")
        targets_n = [(geometry, policy, 1.0)]
    else:
        targets_n = normalize_targets(targets, block=instance.block)
    if weights is None:
        weights = conflict_graph(instance, window=window)
    ids = _order_ids(instance, order)
    gap_vec = _gap_vector(instance, gaps)
    if gap_vec is None:
        gap_vec = np.zeros(instance.n_objects, dtype=np.int64)
    gap_total = int(gap_vec.sum())
    if gap_total > gap_budget:
        raise LayoutError(
            f"starting gaps use {gap_total} blocks, over gap_budget={gap_budget}"
        )
    pos_of = {oid: p for p, oid in enumerate(ids)}
    n_obj = instance.n_objects
    # heavy conflict pairs first, then every remaining pair for completeness
    ranked = sorted(weights, key=lambda e: (-weights[e], e))
    seen = set(ranked)
    ranked += [
        (a, b) for a in range(n_obj) for b in range(a + 1, n_obj)
        if (a, b) not in seen
    ]
    # gap moves visit hot (high conflict degree) objects first
    degree = [0.0] * n_obj
    for (a, b), w in weights.items():
        degree[a] += w
        degree[b] += w
    hot = sorted(range(n_obj), key=lambda o: (-degree[o], o))

    if batch < 1:
        raise LayoutError(f"batch must be >= 1, got {batch}")
    from repro.runtime.backend import CandidateScorer

    with obs.span(obs_names.PLACEMENT_SEARCH, batch=batch), CandidateScorer(
        instance, targets_n, backend=backend, workers=workers,
        chunk_words=chunk_words,
    ) as scorer:

        def cost_of() -> float:
            return scorer.score([_placed_starts(instance, ids, gap_vec)])[0]

        cost = cost_of()
        evals = 1
        trajectory: List[float] = [cost]
        if batch > 1:
            cost, evals = _batched_refine(
                instance, scorer, ids, gap_vec, ranked, hot,
                gap_budget, gap_total, cost, evals, budget, batch, trajectory,
            )
        else:
            improved = True
            while improved and evals < budget:
                improved = False
                for a, b in ranked:
                    if evals >= budget:
                        break
                    if instance.nblocks[a] == 0 and instance.nblocks[b] == 0:
                        continue  # zero-length objects own no blocks: no-op
                    i, j = pos_of[a], pos_of[b]
                    ids[i], ids[j] = ids[j], ids[i]
                    trial = cost_of()
                    evals += 1
                    if trial < cost:
                        cost = trial
                        pos_of[a], pos_of[b] = j, i
                        improved = True
                    else:
                        ids[i], ids[j] = ids[j], ids[i]
                if gap_budget:
                    for oid in hot:
                        if evals >= budget:
                            break
                        for delta in (1, -1):
                            if delta > 0 and gap_total >= gap_budget:
                                continue
                            if delta < 0 and gap_vec[oid] == 0:
                                continue
                            gap_vec[oid] += delta
                            trial = cost_of()
                            evals += 1
                            if trial < cost:
                                cost = trial
                                gap_total += delta
                                improved = True
                                break  # opposite delta re-tests the state left
                            gap_vec[oid] -= delta
                            if evals >= budget:
                                break
                if improved:
                    trajectory.append(cost)
        # the scorer counts every candidate it ever evaluated (gap moves
        # and batched chunks included), so the reported evals can never
        # drift from the actual number of cost-model invocations — the
        # "equal eval budget" comparisons in A12/bench_placement gate on it
        evals = scorer.evals
    stats = RefineStats(
        evals=evals, rounds=len(trajectory) - 1, trajectory=tuple(trajectory)
    )
    obs.add(obs_names.PLACEMENT_EVALS, stats.evals)
    obs.add(obs_names.PLACEMENT_ROUNDS, stats.rounds)
    for point in stats.trajectory:
        obs.series(obs_names.PLACEMENT_COST, point)
    out_gaps = {
        instance.objects[oid]: int(g)
        for oid, g in enumerate(gap_vec.tolist())
        if g
    }
    return [instance.objects[oid] for oid in ids], out_gaps, cost, stats


# ----------------------------------------------------------------------
# strategy registry
# ----------------------------------------------------------------------
_STRATEGIES: Dict[str, Callable] = {}


def register_placement(name: str, fn: Callable) -> None:
    """Register a placement strategy: ``fn(instance, geometry, policy=...,
    window=..., budget=..., targets=..., gap_budget=..., batch=...,
    backend=..., workers=..., restarts=..., noise=..., seed=...) ->
    (order, gaps)`` (a full object placement plus a per-object gap map,
    possibly empty).  ``batch``/``backend``/``workers`` only parallelize
    scoring and must not change the returned placement;
    ``restarts``/``noise``/``seed`` drive the smoothed multi-restart
    search (:mod:`repro.mem.facility`) and are ``None`` for strategies
    that ignore them — a given (strategy, knobs) pair must always return
    the same placement (seeded determinism, pinned in CI)."""
    _STRATEGIES[name] = fn


def get_placement(name: str) -> Callable:
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise LayoutError(
            f"unknown placement strategy {name!r}; "
            f"registered: {sorted(_STRATEGIES)}"
        ) from None


def available_placements() -> Tuple[str, ...]:
    return tuple(sorted(_STRATEGIES))


def _topo_strategy(instance: PlacementInstance, geometry: CacheGeometry,
                   policy: str = "direct", window: int = 8, budget: int = 400,
                   targets: Optional[Sequence[PlacementTarget]] = None,
                   gap_budget: int = 0, batch: int = 1,
                   backend: Optional[str] = None,
                   workers: Optional[int] = None,
                   restarts: Optional[int] = None,
                   noise: Optional[float] = None,
                   seed: Optional[int] = None,
                   ) -> Tuple[List[ObjectKey], Dict[ObjectKey, int]]:
    return list(instance.objects), {}


def _color_strategy(instance: PlacementInstance, geometry: CacheGeometry,
                    policy: str = "direct", window: int = 8, budget: int = 400,
                    targets: Optional[Sequence[PlacementTarget]] = None,
                    gap_budget: int = 0, batch: int = 1,
                    backend: Optional[str] = None,
                    workers: Optional[int] = None,
                    restarts: Optional[int] = None,
                    noise: Optional[float] = None,
                    seed: Optional[int] = None,
                    ) -> Tuple[List[ObjectKey], Dict[ObjectKey, int]]:
    if targets:
        geometry, policy, _w = _primary_target(
            normalize_targets(targets, block=instance.block)
        )
    return greedy_color_order(instance, geometry, policy=policy, window=window), {}


def _swap_strategy(instance: PlacementInstance, geometry: CacheGeometry,
                   policy: str = "direct", window: int = 8, budget: int = 400,
                   targets: Optional[Sequence[PlacementTarget]] = None,
                   gap_budget: int = 0, batch: int = 1,
                   backend: Optional[str] = None,
                   workers: Optional[int] = None,
                   restarts: Optional[int] = None,
                   noise: Optional[float] = None,
                   seed: Optional[int] = None,
                   ) -> Tuple[List[ObjectKey], Dict[ObjectKey, int]]:
    if targets:
        targets_n = normalize_targets(targets, block=instance.block)
    else:
        targets_n = [(geometry, policy, 1.0)]
    if all(_conflict_sets(g, p) <= 1 for g, p, _w in targets_n):
        # fully associative everywhere: misses are provably placement-
        # invariant, so burning the budget on full-trace replays cannot
        # ever improve
        return list(instance.objects), {}
    weights = conflict_graph(instance, window=window)
    pg, pp, _w = _primary_target(targets_n)
    start = greedy_color_order(
        instance, pg, policy=pp, window=window, weights=weights
    )
    order, gaps, _, _ = swap_refine(
        instance, start, window=window, budget=budget, weights=weights,
        targets=targets_n, gap_budget=gap_budget, batch=batch,
        backend=backend, workers=workers,
    )
    return order, gaps


register_placement("topo", _topo_strategy)
register_placement("color", _color_strategy)
register_placement("swap", _swap_strategy)


# ----------------------------------------------------------------------
# top-level entry points
# ----------------------------------------------------------------------
@dataclass
class PlacementResult:
    """An optimized placement and its exact cost accounting.

    ``order`` and ``gaps`` feed straight into ``placement=`` / ``gaps=`` of
    :func:`~repro.runtime.compiled.compile_trace`,
    :meth:`~repro.runtime.executor.Executor.measure`, or
    :meth:`~repro.mem.layout.MemoryLayout.place_graph`.

    ``cost`` / ``seed_cost`` are miss counts for a single-target run, the
    weighted miss sums for a multi-target one; ``per_target`` /
    ``seed_per_target`` carry the individual miss counts in target order
    (the never-worse-at-every-target guarantee is stated on those).
    """

    strategy: str
    order: List[ObjectKey]
    cost: float
    seed_cost: float
    gaps: Dict[ObjectKey, int] = field(default_factory=dict)
    targets: List[PlacementTarget] = field(default_factory=list)
    per_target: List[int] = field(default_factory=list)
    seed_per_target: List[int] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fraction of the seed layout's (weighted) misses removed."""
        return 1.0 - self.cost / self.seed_cost if self.seed_cost else 0.0

    @property
    def gap_blocks(self) -> int:
        """Total deliberate padding the placement spends, in blocks."""
        return sum(self.gaps.values())


def optimize_instance(
    instance: PlacementInstance,
    geometry: Optional[CacheGeometry] = None,
    strategy: str = "swap",
    policy: str = "direct",
    window: int = 8,
    budget: int = 400,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0,
    batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    restarts: Optional[int] = None,
    noise: Optional[float] = None,
    seed: Optional[int] = None,
) -> PlacementResult:
    """Run one registered strategy against a prebuilt instance.

    Single-target form: ``geometry`` + ``policy``.  Multi-geometry form:
    ``targets=[(geometry, policy, weight), ...]`` — the objective is the
    weighted miss sum.  Either way the result is **never worse than the
    seed at any individual target**: a candidate that regresses anywhere
    (the A7 cross-geometry failure mode) is discarded for the seed layout.

    ``batch``/``backend``/``workers`` parallelize candidate scoring (see
    :func:`swap_refine`): the returned placement depends only on ``batch``,
    never on where scoring ran.  ``restarts``/``noise``/``seed`` drive the
    smoothed multi-restart search (:mod:`repro.mem.facility`); strategies
    that do not restart ignore them.
    """
    if targets is not None:
        targets_n = normalize_targets(targets, block=instance.block)
    else:
        if geometry is None:
            raise LayoutError("optimize_instance needs a geometry or targets")
        targets_n = [(geometry, policy, 1.0)]
    fn = get_placement(strategy)
    seed_order = list(instance.objects)
    seed_per = _target_misses(remap_blocks(instance, seed_order), targets_n)
    seed_cost = sum(w * m for (_, _, w), m in zip(targets_n, seed_per))
    out = fn(
        instance, geometry, policy=policy, window=window, budget=budget,
        targets=targets if targets is not None else None, gap_budget=gap_budget,
        batch=batch, backend=backend, workers=workers,
        restarts=restarts, noise=noise, seed=seed,
    )
    order, gaps = out
    per = _target_misses(remap_blocks(instance, order, gaps=gaps), targets_n)
    cost = sum(w * m for (_, _, w), m in zip(targets_n, per))
    if cost > seed_cost or any(c > s for c, s in zip(per, seed_per)):
        order, gaps, cost, per = seed_order, {}, seed_cost, seed_per
    if targets is None:
        # single-target runs keep integer miss counts for cost/seed_cost
        cost, seed_cost = int(per[0]), int(seed_per[0])
    return PlacementResult(
        strategy=strategy, order=order, cost=cost, seed_cost=seed_cost,
        gaps=dict(gaps), targets=targets_n, per_target=list(per),
        seed_per_target=list(seed_per),
    )


def optimize_placement(
    graph: StreamGraph,
    schedule: "Schedule",
    geometry: Optional[CacheGeometry] = None,
    strategy: str = "swap",
    policy: str = "direct",
    capacities: Optional[Dict[int, int]] = None,
    order: Optional[Iterable[str]] = None,
    window: int = 8,
    budget: int = 400,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0,
    batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    restarts: Optional[int] = None,
    noise: Optional[float] = None,
    seed: Optional[int] = None,
) -> PlacementResult:
    """One-shot convenience: compile the seed trace, search, return the
    best placement for ``(geometry, policy)`` — or, with ``targets``, the
    best layout under the multi-geometry weighted objective.
    ``batch``/``backend``/``workers`` fan candidate scoring over the
    selected execution backend (:mod:`repro.runtime.backend`) without
    changing the search trajectory; ``restarts``/``noise``/``seed`` drive
    the smoothed multi-restart search (:mod:`repro.mem.facility`)."""
    if geometry is not None:
        block = geometry.block
    elif targets:
        block = normalize_targets(targets)[0][0].block
    else:
        raise LayoutError("optimize_placement needs a geometry or targets")
    instance = build_instance(
        graph, schedule, block, capacities=capacities, order=order
    )
    return optimize_instance(
        instance, geometry, strategy=strategy, policy=policy,
        window=window, budget=budget, targets=targets, gap_budget=gap_budget,
        batch=batch, backend=backend, workers=workers,
        restarts=restarts, noise=noise, seed=seed,
    )
