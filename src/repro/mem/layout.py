"""Address-space layout for module state and channel buffers.

The DAM analysis counts block transfers for concrete memory locations, so
the simulator needs every module's state and every channel's buffer to live
at definite addresses.  :class:`MemoryLayout` allocates non-overlapping,
block-aligned word ranges:

* each module's state is one contiguous region of ``s(v)`` words — firing
  the module touches the whole region (the paper: "the entire state of that
  module must be loaded into the cache");
* each channel's buffer is one contiguous region of ``capacity`` words used
  circularly by :class:`repro.runtime.buffers.ChannelBuffer`.

Block alignment matters for fidelity: without it, two small hot objects
could share a block and the simulator would under-count transfers relative
to the model's accounting (the paper charges each object's traffic
separately).  Alignment costs at most one block of padding per object and
only inflates constants, never asymptotics.  The default layout order is
deliberate — state regions first, in topological order, then buffers — so
that a partition component occupies a contiguous stretch of the address
space, the same locality a real streaming compiler's arena allocator would
produce.

Placement is pluggable: :meth:`MemoryLayout.place_graph` accepts either the
module-only ``order`` convention above or a full ``placement`` — a sequence
of :data:`ObjectKey` tuples (``("state", name)`` / ``("buffer", cid)``)
interleaving state regions and channel buffers arbitrarily.  Whatever the
order, every region goes through the same aligned-cursor allocator, so any
placement is block-aligned and non-overlapping *by construction*; only the
addresses (and hence set conflicts under low associativity) change.  A
``gaps=`` map additionally inserts *deliberate* block-granular padding
before chosen objects — dead address space that shifts everything
downstream, the second lever (besides order) the conflict-aware optimizer
in :mod:`repro.mem.placement` searches.  Deliberate gaps are accounted
separately from alignment padding (``gap_words`` vs ``alignment_words``;
``total_words`` is their sum plus payload), so the "at most one block of
padding per object" alignment claim stays checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LayoutError
from repro.graphs.sdf import StreamGraph

__all__ = ["Region", "MemoryLayout", "ObjectKey", "layout_objects"]

#: One placeable object: ``("state", module_name)`` or ``("buffer", channel_id)``.
ObjectKey = Tuple[str, object]


def layout_objects(
    graph: StreamGraph, order: Optional[Iterable[str]] = None
) -> List[ObjectKey]:
    """The default placement: state regions (topological or ``order``) first,
    then channel buffers in channel-id order — exactly what
    :meth:`MemoryLayout.place_graph` does when no explicit placement is given.
    """
    names = list(order) if order is not None else graph.topological_order()
    return [("state", n) for n in names] + [("buffer", ch.cid) for ch in graph.channels()]


@dataclass(frozen=True)
class Region:
    """A contiguous word range ``[start, start + length)``."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length

    def overlaps(self, other: "Region") -> bool:
        if self.length == 0 or other.length == 0:
            return False
        return self.start < other.end and other.start < self.end


class MemoryLayout:
    """Allocates block-aligned regions for one graph + buffer sizing.

    Parameters
    ----------
    block:
        Block size ``B`` in words; every region starts at a multiple of it.
    """

    def __init__(self, block: int = 1) -> None:
        if block <= 0:
            raise LayoutError(f"block size must be positive, got {block}")
        self.block = block
        self._cursor = 0
        self._state: Dict[str, Region] = {}
        self._buffer: Dict[int, Region] = {}
        self._alignment_words = 0
        self._gap_words = 0

    # ------------------------------------------------------------------
    def _align(self) -> None:
        rem = self._cursor % self.block
        if rem:
            self._alignment_words += self.block - rem
            self._cursor += self.block - rem

    def _insert_gap(self, blocks: int) -> None:
        """Deliberate padding: ``blocks`` whole blocks of dead address space
        before the next region (the placement optimizer's second lever —
        gaps shift everything downstream by a block multiple, changing set
        conflicts without touching any intra-region offset)."""
        if not isinstance(blocks, int) or isinstance(blocks, bool) or blocks < 0:
            raise LayoutError(f"gap must be a non-negative block count, got {blocks!r}")
        if blocks:
            self._align()
            self._gap_words += blocks * self.block
            self._cursor += blocks * self.block

    def _allocate(self, length: int) -> Region:
        if length < 0:
            raise LayoutError(f"cannot allocate negative length {length}")
        self._align()
        region = Region(self._cursor, length)
        self._cursor += length
        return region

    # ------------------------------------------------------------------
    def place_graph(
        self,
        graph: StreamGraph,
        buffer_sizes: Dict[int, int],
        order: Optional[Iterable[str]] = None,
        placement: Optional[Sequence[ObjectKey]] = None,
        gaps: Optional[Dict[ObjectKey, int]] = None,
    ) -> None:
        """Lay out every module's state and every channel's buffer.

        ``buffer_sizes`` maps channel id -> capacity in words (tokens); it
        must cover every channel.  ``order`` controls state placement
        (default: topological), letting partition schedulers co-locate a
        component's modules; buffers follow in channel order.  ``placement``
        instead fixes the *complete* object order — a sequence of
        ``("state", name)`` / ``("buffer", cid)`` keys covering every state
        region and every buffer exactly once — which is how the
        conflict-aware optimizer (:mod:`repro.mem.placement`) controls
        addresses.  ``order`` and ``placement`` are mutually exclusive.

        ``gaps`` inserts deliberate padding: a map from object key to a
        whole number of *blocks* of dead address space placed immediately
        before that object's region (the optimizer's padding lever).  Gap
        words are tracked separately from alignment padding — see
        :attr:`gap_words` / :attr:`alignment_words` — and every key must
        name an object the plan actually places.
        """
        if placement is not None and order is not None:
            raise LayoutError("pass either order= or placement=, not both")
        if placement is not None:
            plan = list(placement)
            want = set(layout_objects(graph))
            if set(plan) != want or len(plan) != len(want):
                raise LayoutError(
                    "placement must cover every state region and buffer "
                    "exactly once (keys ('state', name) / ('buffer', cid))"
                )
        else:
            names = list(order) if order is not None else graph.topological_order()
            if set(names) != {m.name for m in graph.modules()}:
                raise LayoutError("placement order must cover exactly the graph's modules")
            plan = [("state", n) for n in names] + [
                ("buffer", ch.cid) for ch in graph.channels()
            ]
        if gaps:
            unknown = set(gaps) - set(plan)
            if unknown:
                raise LayoutError(
                    f"gaps name objects the plan does not place: {sorted(unknown)!r}"
                )
        for kind, key in plan:
            if gaps:
                self._insert_gap(gaps.get((kind, key), 0))
            if kind == "state":
                if key in self._state:
                    raise LayoutError(f"module {key!r} already placed")
                self._state[key] = self._allocate(graph.state(key))
            elif kind == "buffer":
                ch = graph.channel(key)
                if ch.cid not in buffer_sizes:
                    raise LayoutError(
                        f"no buffer size for channel {ch.cid} ({ch.src}->{ch.dst})"
                    )
                if ch.cid in self._buffer:
                    raise LayoutError(f"channel {ch.cid} already placed")
                cap = buffer_sizes[ch.cid]
                if cap <= 0:
                    raise LayoutError(
                        f"channel {ch.cid} ({ch.src}->{ch.dst}) needs positive capacity, got {cap}"
                    )
                self._buffer[ch.cid] = self._allocate(cap)
            else:
                raise LayoutError(f"unknown placement object kind {kind!r}")

    # ------------------------------------------------------------------
    def state_region(self, name: str) -> Region:
        try:
            return self._state[name]
        except KeyError:
            raise LayoutError(f"module {name!r} has no placed state region") from None

    def buffer_region(self, cid: int) -> Region:
        try:
            return self._buffer[cid]
        except KeyError:
            raise LayoutError(f"channel {cid} has no placed buffer region") from None

    @property
    def footprint(self) -> int:
        """Total words of address space consumed (including padding)."""
        return self._cursor

    @property
    def total_words(self) -> int:
        """Total words of address space: payload + alignment + gaps.

        Identical to :attr:`footprint`, but with its composition exposed:
        ``total_words == payload_words + alignment_words + gap_words``
        always holds, so deliberate padding (:attr:`gap_words`, inserted by
        ``gaps=``) is never conflated with the at-most-one-block-per-object
        alignment cost (:attr:`alignment_words`) the module docstring
        promises.
        """
        return self._cursor

    @property
    def payload_words(self) -> int:
        """Words actually owned by placed regions (no padding of any kind)."""
        return sum(r.length for r in self._state.values()) + sum(
            r.length for r in self._buffer.values()
        )

    @property
    def alignment_words(self) -> int:
        """Words lost to block alignment (at most ``block - 1`` per object)."""
        return self._alignment_words

    @property
    def gap_words(self) -> int:
        """Words of *deliberate* padding inserted via ``place_graph(gaps=)``."""
        return self._gap_words

    def check_disjoint(self) -> None:
        """O(n log n) invariant check that no two regions overlap."""
        regions: list[Tuple[int, int, str]] = []
        for name, r in self._state.items():
            regions.append((r.start, r.end, f"state:{name}"))
        for cid, r in self._buffer.items():
            regions.append((r.start, r.end, f"buffer:{cid}"))
        regions.sort()
        for (s1, e1, n1), (s2, e2, n2) in zip(regions, regions[1:]):
            # zero-length regions may share a start with a neighbour
            if s2 < e1:
                raise LayoutError(f"regions overlap: {n1} [{s1},{e1}) and {n2} [{s2},{e2})")
