"""Looped (run-length / loop-nest) schedule representation.

SDF compilers never store schedules as flat firing lists — a steady-state
schedule is a *loop nest* like ``(16 (4 A) (2 B C))`` meaning "16 times: A
four times, then twice (B then C)".  Our generated schedules are extremely
repetitive (a partitioned batch schedule is literally
``batches × components × M × sweep``), so the flat lists the schedulers
build can run to hundreds of thousands of entries.  This module provides:

* :class:`Loop` — a loop-nest node: ``count`` repetitions of a body whose
  elements are module names or nested loops;
* :class:`LoopedSchedule` — a drop-in companion to
  :class:`~repro.runtime.schedule.Schedule`: same label/capacities, lazy
  iteration (:meth:`firings_iter`) so the executor can run it without
  materializing, and exact expansion for validation;
* :func:`compress_schedule` — turn a flat schedule into a loop nest by
  iterated run-length coding over (module | loop) token streams.  The
  compressor is greedy (repeated adjacent-pair folding), not optimal CSE,
  but collapses all schedules this library generates by 100-5000x.

The executor accepts either representation (`Executor.run` iterates, it
never indexes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ScheduleError
from repro.runtime.schedule import Schedule

__all__ = ["Loop", "LoopedSchedule", "compress_schedule"]

Element = Union[str, "Loop"]


@dataclass(frozen=True)
class Loop:
    """``count`` repetitions of ``body`` (module names and nested loops)."""

    count: int
    body: Tuple[Element, ...]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ScheduleError(f"loop count must be >= 1, got {self.count}")
        if not self.body:
            raise ScheduleError("loop body must be non-empty")

    def __len__(self) -> int:
        """Number of firings the loop expands to."""
        inner = sum(len(e) if isinstance(e, Loop) else 1 for e in self.body)
        return self.count * inner

    def firings_iter(self) -> Iterator[str]:
        for _ in range(self.count):
            for e in self.body:
                if isinstance(e, Loop):
                    yield from e.firings_iter()
                else:
                    yield e

    def render(self) -> str:
        parts = " ".join(e.render() if isinstance(e, Loop) else e for e in self.body)
        return f"({self.count} {parts})"


@dataclass
class LoopedSchedule:
    """A schedule stored as a loop nest.

    Mirrors :class:`Schedule`'s interface where it matters (``label``,
    ``capacities``, ``__len__``, iteration) and converts both ways.
    """

    loops: Tuple[Element, ...]
    capacities: Optional[Dict[int, int]] = None
    label: str = "looped"

    def __len__(self) -> int:
        return sum(len(e) if isinstance(e, Loop) else 1 for e in self.loops)

    def firings_iter(self) -> Iterator[str]:
        for e in self.loops:
            if isinstance(e, Loop):
                yield from e.firings_iter()
            else:
                yield e

    def to_flat(self) -> Schedule:
        return Schedule(list(self.firings_iter()), capacities=self.capacities, label=self.label)

    @property
    def n_nodes(self) -> int:
        """Size of the loop-nest representation (for compression ratios)."""

        def count(e: Element) -> int:
            if isinstance(e, Loop):
                return 1 + sum(count(b) for b in e.body)
            return 1

        return sum(count(e) for e in self.loops)

    def compression_ratio(self) -> float:
        return len(self) / self.n_nodes if self.n_nodes else 0.0

    def render(self) -> str:
        return " ".join(e.render() if isinstance(e, Loop) else e for e in self.loops)


def _rle(tokens: List[Element]) -> List[Element]:
    """Run-length fold identical adjacent elements into loops."""
    out: List[Element] = []
    i = 0
    while i < len(tokens):
        j = i
        while j < len(tokens) and tokens[j] == tokens[i]:
            j += 1
        run = j - i
        if run > 1:
            if isinstance(tokens[i], Loop):
                inner = tokens[i]
                out.append(Loop(count=run * inner.count, body=inner.body))
            else:
                out.append(Loop(count=run, body=(tokens[i],)))
        else:
            out.append(tokens[i])
        i = j
    return out


def _fold_period(tokens: List[Element], period: int) -> List[Element]:
    """Fold maximal repetitions of length-``period`` blocks into loops."""
    out: List[Element] = []
    i = 0
    n = len(tokens)
    while i < n:
        block = tuple(tokens[i : i + period])
        if len(block) < period:
            out.extend(tokens[i:])
            break
        reps = 1
        while (
            i + (reps + 1) * period <= n
            and tuple(tokens[i + reps * period : i + (reps + 1) * period]) == block
        ):
            reps += 1
        if reps > 1:
            out.append(Loop(count=reps, body=block))
            i += reps * period
        else:
            out.append(tokens[i])
            i += 1
    return out


def compress_schedule(schedule: Schedule, max_period: int = 64) -> LoopedSchedule:
    """Compress a flat schedule into a loop nest.

    Pipeline: run-length fold, then periodic folds for periods 2..max_period
    (re-running the run-length fold after each, since folding exposes new
    adjacency), repeated until a fixed point.  Greedy and quadratic-ish in
    the *compressed* size — fast in practice because each pass shrinks the
    stream dramatically for machine-generated schedules.
    """
    tokens: List[Element] = list(schedule.firings)
    changed = True
    while changed:
        before = len(tokens)
        tokens = _rle(tokens)
        for period in range(2, min(max_period, max(2, len(tokens))) + 1):
            folded = _fold_period(tokens, period)
            if len(folded) < len(tokens):
                tokens = _rle(folded)
        changed = len(tokens) < before
    return LoopedSchedule(
        loops=tuple(tokens), capacities=schedule.capacities, label=schedule.label
    )
