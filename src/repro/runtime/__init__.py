"""Execution substrate: FIFO channel buffers bound to memory addresses, the
firing engine that moves tokens through the cache simulator, schedule
representation/validation, and deadlock analysis."""

from repro.runtime.buffers import ChannelBuffer
from repro.runtime.looped import Loop, LoopedSchedule, compress_schedule
from repro.runtime.schedule import Schedule, validate_schedule
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.deadlock import fireable_modules, demand_driven_schedule

__all__ = [
    "ChannelBuffer",
    "Loop",
    "LoopedSchedule",
    "compress_schedule",
    "Schedule",
    "validate_schedule",
    "ExecutionResult",
    "Executor",
    "fireable_modules",
    "demand_driven_schedule",
]
