"""Execution substrate: FIFO channel buffers bound to memory addresses, the
firing engine that moves tokens through the cache simulator, the trace
compiler and the policy-aware replay kernels that answer whole geometry
families in one pass, the execution backends (serial/thread/process fan-out
with shared-memory trace shipping and the ``run_batch`` service front door),
the persistent content-addressed trace cache, the out-of-core streaming
engine (chunked trace compilation spilled to cache segments plus
carry-over replay kernels, bit-identical to the monolithic path),
schedule representation/validation, and deadlock analysis."""

from repro.runtime.backend import (
    BACKENDS,
    ServiceAnswer,
    ServiceQuery,
    effective_workers,
    fan_out,
    geometry_sweep,
    run_batch,
)
from repro.runtime.buffers import ChannelBuffer
from repro.runtime.compiled import (
    CompiledTrace,
    TraceCompiler,
    compile_trace,
    measure_compiled,
    simulate_trace,
)
from repro.runtime.streaming import (
    ArrayChunkSource,
    ChunkedTrace,
    compile_trace_chunked,
    recency_carry,
    simulate_stream,
    stream_masks,
    stream_stats,
)
from repro.runtime.trace_cache import (
    TraceCache,
    cached_compile_trace,
    query_digest,
    trace_digest,
)
from repro.runtime.replay import (
    opt_stack_distances,
    per_set_stack_distances,
    replay_miss_masks,
    replay_misses,
)
from repro.runtime.looped import Loop, LoopedSchedule, compress_schedule
from repro.runtime.schedule import Schedule, validate_schedule
from repro.runtime.executor import (
    ExecutionResult,
    Executor,
    sink_stream_words,
    source_stream_words,
)
from repro.runtime.deadlock import fireable_modules, demand_driven_schedule

__all__ = [
    "BACKENDS",
    "ServiceAnswer",
    "ServiceQuery",
    "TraceCache",
    "cached_compile_trace",
    "effective_workers",
    "fan_out",
    "geometry_sweep",
    "query_digest",
    "run_batch",
    "trace_digest",
    "ChannelBuffer",
    "CompiledTrace",
    "TraceCompiler",
    "compile_trace",
    "measure_compiled",
    "simulate_trace",
    "ArrayChunkSource",
    "ChunkedTrace",
    "compile_trace_chunked",
    "recency_carry",
    "simulate_stream",
    "stream_masks",
    "stream_stats",
    "replay_miss_masks",
    "replay_misses",
    "per_set_stack_distances",
    "opt_stack_distances",
    "Loop",
    "LoopedSchedule",
    "compress_schedule",
    "Schedule",
    "validate_schedule",
    "ExecutionResult",
    "Executor",
    "source_stream_words",
    "sink_stream_words",
    "fireable_modules",
    "demand_driven_schedule",
]
