"""Out-of-core streaming: chunked trace compilation + carried replay kernels.

The monolithic engine (:mod:`repro.runtime.compiled`) materializes the whole
block trace in RAM before replaying it; schedules past ~10^7 accesses cannot
run at all.  This module converts the engine from memory-bounded to
disk-bounded without changing a single answer:

* :func:`compile_trace_chunked` compiles a schedule in fixed-size chunks
  (:meth:`~repro.runtime.compiled.TraceCompiler.compile_chunks`), spilling
  each chunk to a content-addressed ``.npz`` segment in a
  :class:`~repro.runtime.trace_cache.TraceCache`
  (:func:`~repro.runtime.trace_cache.segment_digest` keys) and returning a
  :class:`ChunkedTrace` — a disk-backed trace whose peak memory is
  O(``chunk_words``), not O(trace length).  A corrupted or deleted segment
  recompiles *alone*: the recompile pass re-runs the chunk generator but
  only writes segments whose files are absent, so intact segments keep
  their bytes and mtimes.
* The streaming replay kernels answer every registered policy chunk by
  chunk, carrying exactly the state the next chunk needs:

  - **lru / direct** carry one global recency list (:func:`recency_carry`):
    every previously-seen distinct block, ordered by last access, LRU
    first.  Prepending it to a chunk and running the ordinary vectorized
    passes (:func:`~repro.runtime.replay.per_set_stack_distances`, the
    per-frame scan) reproduces the monolithic distances exactly — set-local
    recency is the restriction of global recency, distinct-counting cannot
    double-count a carried block, and the last carried block of a frame is
    that frame's current content.
  - **opt** runs two passes: a *reverse* pass computes each access's
    absolute next-use position (spilled per chunk to a temporary ``.npy``),
    then a *forward* pass resumes the priority-stack
    (:func:`~repro.runtime.replay._opt_stack_pass`) across chunks with
    carried (stack, residency) state.  Sentinels for never-used-again
    blocks become ``total + absolute_position`` — a monotone injective
    transform of the monolithic ``n + i`` sentinels, so every priority
    comparison (hence every eviction, hence every distance) is preserved.
  - **two_level** streams L1 with the global recency carry, pipes each
    chunk's L1 miss sub-trace into L2 with one recency carry *per L1
    group* (the sub-trace depends only on L1), and scatters L2 verdicts
    back to chunk positions — never an O(trace) mask in the stats path.

* :func:`simulate_stream` is the replay front door
  (:func:`~repro.runtime.compiled.simulate_trace` dispatches here for any
  :class:`ChunkedTrace` or whenever ``chunk_words=`` is given): it reduces
  per-chunk masks to (misses, per-phase bincounts) and assembles the same
  :class:`~repro.runtime.executor.ExecutionResult` rows as the monolithic
  path — bit-identical, the differential contract ``tests/test_streaming.py``
  pins across every policy × index scheme × chunk size.  On the process
  backend, lru/direct chunks fan out over a pool
  (:func:`repro.runtime.backend.process_chunk_sweep`) with parent-computed
  carries.

Carried state is O(distinct blocks) — the looped schedules this targets
reuse a bounded working set, so the carry stays small while the trace grows
without bound.

Array dtype contract (statically enforced by lint rule R4, see
``docs/STATIC_ANALYSIS.md``): block ids, distances, and positions are
``int64``; per-access phase codes are ``uint8``; miss masks are ``bool``.
Every numpy constructor in this module passes its dtype explicitly.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    cast,
)

import numpy as np

from repro.cache.base import CacheGeometry
from repro.cache.hierarchy import TwoLevelGeometry
from repro.cache.opt import next_occurrences
from repro.cache.policy import get_policy
from repro.errors import CacheConfigError
from repro.graphs.sdf import StreamGraph
from repro.mem.layout import ObjectKey
from repro.obs import core as obs
from repro.obs import names as obs_names
from repro.runtime.compiled import (
    PHASE_NAMES,
    CompiledTrace,
    TraceCompiler,
    _result_from_stats,
)
from repro.runtime.executor import ExecutionResult
from repro.runtime.replay import (
    _direct_hit_mask,
    _OptState,
    _opt_stack_pass,
    _scheme_of,
    _set_segments,
    per_set_stack_distances,
    set_index_array,
)
from repro.runtime.schedule import Schedule
from repro.runtime.trace_cache import (
    TraceCache,
    default_cache,
    segment_digest,
    trace_digest,
)

__all__ = [
    "ChunkSource",
    "ArrayChunkSource",
    "ChunkedTrace",
    "recency_carry",
    "compile_trace_chunked",
    "stream_masks",
    "stream_stats",
    "simulate_stream",
]

#: Reduced replay statistics: per geometry, (misses, phase bincount or None).
StreamStats = List[Tuple[int, Optional[List[int]]]]

#: Policies with a carried streaming kernel (= every registered replay policy).
STREAMING_POLICIES = ("direct", "lru", "opt", "two_level")


# ----------------------------------------------------------------------
# chunk sources
# ----------------------------------------------------------------------
class ChunkSource(Protocol):
    """Anything the streaming kernels can replay: one block trace viewed as
    an ordered sequence of chunks, randomly addressable by index (the OPT
    reverse pass walks chunks backwards)."""

    @property
    def accesses(self) -> int: ...

    @property
    def n_chunks(self) -> int: ...

    def chunk(self, index: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """``(blocks, phases-or-None)`` arrays of chunk ``index``."""
        ...

    def chunk_bounds(self) -> List[Tuple[int, int]]:
        """Absolute ``[start, stop)`` trace positions of every chunk."""
        ...


class ArrayChunkSource:
    """An in-memory trace viewed through a chunk partition.

    Exactly one of ``chunk_words`` (fixed-size chunks, last one smaller) and
    ``sizes`` (an explicit partition — what the hypothesis
    ``chunking_strategy`` exercises) must be given.  Chunks are views, so
    the source adds no memory beyond the arrays it wraps.
    """

    def __init__(
        self,
        blocks: np.ndarray,
        phases: Optional[np.ndarray] = None,
        chunk_words: Optional[int] = None,
        sizes: Optional[Sequence[int]] = None,
    ) -> None:
        self.blocks = np.ascontiguousarray(blocks, dtype=np.int64)
        self.phases = (
            None if phases is None else np.ascontiguousarray(phases, dtype=np.uint8)
        )
        n = int(self.blocks.shape[0])
        if self.phases is not None and int(self.phases.shape[0]) != n:
            raise CacheConfigError(
                f"phases length {int(self.phases.shape[0])} does not match "
                f"blocks length {n}"
            )
        if (chunk_words is None) == (sizes is None):
            raise CacheConfigError(
                "pass exactly one of chunk_words= and sizes= to ArrayChunkSource"
            )
        bounds: List[Tuple[int, int]] = []
        if chunk_words is not None:
            if chunk_words < 1:
                raise CacheConfigError(
                    f"chunk_words must be >= 1, got {chunk_words}"
                )
            lo = 0
            while lo < n:
                bounds.append((lo, min(lo + int(chunk_words), n)))
                lo += int(chunk_words)
        else:
            assert sizes is not None
            lo = 0
            for s in sizes:
                if s < 1:
                    raise CacheConfigError(f"chunk sizes must be >= 1, got {s}")
                bounds.append((lo, lo + int(s)))
                lo += int(s)
            if lo != n:
                raise CacheConfigError(
                    f"chunk sizes sum to {lo}, but the trace has {n} accesses"
                )
        self._bounds = bounds

    @property
    def accesses(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def n_chunks(self) -> int:
        return len(self._bounds)

    def chunk(self, index: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        lo, hi = self._bounds[index]
        return (
            self.blocks[lo:hi],
            None if self.phases is None else self.phases[lo:hi],
        )

    def chunk_bounds(self) -> List[Tuple[int, int]]:
        return list(self._bounds)


class ChunkedTrace:
    """A compiled trace living on disk as content-addressed ``.npz`` segments.

    Duck-types the :class:`~repro.runtime.compiled.CompiledTrace` metadata
    surface (``label``/``block``/``accesses``/``firings``/``fire_counts``/
    ``source_fires``/``sink_fires``) so result assembly is shared, but never
    holds more than one chunk of block ids in memory.  :meth:`chunk` reads
    through the backing :class:`~repro.runtime.trace_cache.TraceCache`; a
    missing or corrupt segment (the cache's ``get`` discards and counts it)
    triggers a *segment-granular* recompile — the chunk generator re-runs
    but writes only absent segments, leaving intact ones untouched on disk.
    """

    def __init__(
        self,
        label: str,
        block: int,
        chunk_words: int,
        accesses: int,
        firings: int,
        fire_counts: Dict[str, int],
        source_fires: int,
        sink_fires: int,
        segment_keys: Sequence[str],
        cache: TraceCache,
        recompile: "Recompiler",
        owned: Optional[tempfile.TemporaryDirectory] = None,
    ) -> None:
        self.label = label
        self.block = int(block)
        self.chunk_words = int(chunk_words)
        self.accesses = int(accesses)
        self.firings = int(firings)
        self.fire_counts = dict(fire_counts)
        self.source_fires = int(source_fires)
        self.sink_fires = int(sink_fires)
        self.segment_keys = list(segment_keys)
        self.cache = cache
        self._recompile = recompile
        self._owned = owned  # keeps an owned spill directory alive

    @property
    def n_chunks(self) -> int:
        return len(self.segment_keys)

    def __len__(self) -> int:
        return self.accesses

    def chunk_bounds(self) -> List[Tuple[int, int]]:
        cw = self.chunk_words
        return [
            (i * cw, min((i + 1) * cw, self.accesses))
            for i in range(self.n_chunks)
        ]

    def segment_path(self, index: int) -> Path:
        """On-disk location of segment ``index`` (the cache's documented
        one-``.npz``-per-key layout); process workers read it directly."""
        return self.cache.path / f"{self.segment_keys[index]}.npz"

    def chunk(self, index: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        seg = self.cache.get(self.segment_keys[index])
        if seg is None:
            # missing or corrupt (get() already discarded and counted it):
            # recompile at segment granularity — only absent segments are
            # rewritten, intact ones keep their bytes and mtimes
            written = self._recompile()
            obs.add(obs_names.STREAM_RECOMPILED, max(1, written))
            seg = self.cache.get(self.segment_keys[index])
            if seg is None:
                raise CacheConfigError(
                    f"segment {index} of trace {self.label!r} could not be "
                    f"recompiled into {str(self.cache.path)!r}"
                )
        return seg.blocks, seg.phases

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedTrace({self.label!r}, accesses={self.accesses}, "
            f"chunk_words={self.chunk_words}, n_chunks={self.n_chunks})"
        )


class Recompiler(Protocol):
    """Re-runs a chunked compilation, writing only absent segments; returns
    the number of segments written."""

    def __call__(self) -> int: ...


# ----------------------------------------------------------------------
# chunked compilation
# ----------------------------------------------------------------------
def compile_trace_chunked(
    graph: StreamGraph,
    schedule: Schedule,
    block: int,
    chunk_words: int,
    capacities: Optional[Dict[int, int]] = None,
    layout_order: Optional[Iterable[str]] = None,
    count_external: bool = True,
    placement: Optional[Sequence[ObjectKey]] = None,
    gaps: Optional[Dict[ObjectKey, int]] = None,
    cache: Optional[TraceCache] = None,
) -> ChunkedTrace:
    """Compile ``schedule`` out-of-core: spill ``chunk_words``-access
    segments to a trace cache, return the :class:`ChunkedTrace` handle.

    Segments are keyed by
    :func:`~repro.runtime.trace_cache.segment_digest` over the parent
    :func:`~repro.runtime.trace_cache.trace_digest`, so a re-run of the same
    compilation skips every segment already on disk (the compile generator
    still executes — it is the only source of chunk boundaries and
    metadata — but no bytes are rewritten).  ``cache=None`` uses the
    configured default cache, else a trace-owned temporary directory with
    an effectively unbounded cap (eviction could otherwise drop a live
    segment mid-replay; a caller-supplied cache keeps its own cap, and an
    evicted segment simply recompiles on next access).
    """
    if chunk_words < 1:
        raise CacheConfigError(f"chunk_words must be >= 1, got {chunk_words}")
    if capacities is None:
        capacities = getattr(schedule, "capacities", None)
    if layout_order is not None:
        layout_order = list(layout_order)
    if placement is not None:
        placement = list(placement)
    owned: Optional[tempfile.TemporaryDirectory] = None
    if cache is None:
        cache = default_cache()
    if cache is None:
        owned = tempfile.TemporaryDirectory(prefix="repro-segments-")
        cache = TraceCache(owned.name, max_bytes=1 << 62)
    seg_cache: TraceCache = cache
    trace_key = trace_digest(
        graph, schedule, block, capacities=capacities, layout_order=layout_order,
        count_external=count_external, placement=placement, gaps=gaps,
    )

    def spill() -> Tuple[TraceCompiler, List[str], int]:
        compiler = TraceCompiler(
            graph, block, capacities=capacities, layout_order=layout_order,
            count_external=count_external, placement=placement, gaps=gaps,
        )
        keys: List[str] = []
        written = 0
        for index, (blocks, phases) in enumerate(
            compiler.compile_chunks(schedule, chunk_words=chunk_words)
        ):
            key = segment_digest(trace_key, index, chunk_words)
            keys.append(key)
            if not seg_cache.has(key):
                seg_cache.put(
                    key,
                    CompiledTrace(
                        label="segment", block=block, blocks=blocks, phases=phases
                    ),
                )
                written += 1
                obs.add(
                    obs_names.STREAM_SPILLED_BYTES,
                    int(blocks.nbytes) + int(phases.nbytes),
                )
        return compiler, keys, written

    with obs.span(obs_names.STREAM_COMPILE):
        compiler, keys, _written = spill()
    obs.add(obs_names.STREAM_CHUNKS, len(keys))
    obs.add(obs_names.COMPILE_CALLS)
    obs.add(obs_names.COMPILE_ACCESSES, compiler.last_accesses)

    def recompile() -> int:
        _compiler, _keys, written = spill()
        return written

    return ChunkedTrace(
        label=compiler.last_label,
        block=block,
        chunk_words=chunk_words,
        accesses=compiler.last_accesses,
        firings=compiler.last_firings,
        fire_counts=compiler.last_fire_counts,
        source_fires=compiler.last_source_fires,
        sink_fires=compiler.last_sink_fires,
        segment_keys=keys,
        cache=seg_cache,
        recompile=recompile,
        owned=owned,
    )


# ----------------------------------------------------------------------
# carried replay kernels
# ----------------------------------------------------------------------
def recency_carry(carry: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Fold a chunk into the global recency carry.

    The carry lists every distinct block seen so far, ordered by last
    access — LRU first, MRU last.  It is exactly the state the lru/direct
    prefix trick needs: prepend it to the next chunk and the within-chunk
    stack distances (and per-frame last blocks) come out as if the whole
    prefix had been replayed.  Folding a chunk is associative with
    concatenation: ``recency_carry(recency_carry(c, a), b) ==
    recency_carry(c, concat(a, b))`` — the hypothesis property
    ``tests/test_streaming.py`` pins.
    """
    carry = np.ascontiguousarray(carry, dtype=np.int64)
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    if blocks.shape[0] == 0:
        return carry
    n = int(blocks.shape[0])
    uniq, idx = np.unique(blocks[::-1], return_index=True)
    last = n - 1 - idx  # position of each distinct block's final access
    order = np.argsort(last, kind="stable")
    tail = uniq[order]
    if carry.shape[0]:
        carry = carry[~np.isin(carry, uniq)]
    return np.concatenate([carry, tail])


def _flat_chunk_masks(
    blocks: np.ndarray,
    carry: np.ndarray,
    geometries: Sequence[CacheGeometry],
    policy: str,
) -> List[np.ndarray]:
    """Per-geometry miss masks of one lru/direct chunk under ``carry``.

    Runs the ordinary monolithic passes over ``concat(carry, chunk)`` and
    keeps the chunk's rows: the carry is each distinct prior block once, in
    recency order, so within-set distances and per-frame last blocks match
    the full-trace pass exactly.  Shared passes are memoized per distinct
    (organization, scheme) just like the monolithic kernels.
    """
    k = int(carry.shape[0])
    synth = np.concatenate([carry, blocks])
    out: List[np.ndarray] = []
    if policy == "lru":
        dist: Dict[Tuple[int, str], np.ndarray] = {}
        for geom in geometries:
            sets = 1 if geom.is_fully_associative else geom.sets
            key = (sets, _scheme_of(geom, sets))
            d = dist.get(key)
            if d is None:
                d = dist[key] = per_set_stack_distances(synth, *key)[k:]
            ways = geom.associativity if sets > 1 else geom.n_blocks
            out.append((d == 0) | (d > ways))
        return out
    if policy == "direct":
        hits: Dict[Tuple[int, str], np.ndarray] = {}
        for geom in geometries:
            if geom.ways not in (None, 1):
                raise CacheConfigError(
                    f"direct-mapped replay needs ways=1 (or an unspecified "
                    f"associativity), got ways={geom.ways}"
                )
            key = (geom.n_blocks, _scheme_of(geom, geom.n_blocks))
            h = hits.get(key)
            if h is None:
                h = hits[key] = _direct_hit_mask(synth, *key)[k:]
            out.append(~h)
        return out
    raise CacheConfigError(  # pragma: no cover - guarded by the dispatcher
        f"no flat streaming kernel for policy {policy!r}"
    )


_ChunkYield = Tuple[np.ndarray, Optional[np.ndarray], List[np.ndarray]]


def _stream_flat_iter(
    source: ChunkSource, geometries: Sequence[CacheGeometry], policy: str
) -> Iterator[_ChunkYield]:
    carry = np.zeros(0, dtype=np.int64)
    for index in range(source.n_chunks):
        blocks, phases = source.chunk(index)
        yield blocks, phases, _flat_chunk_masks(blocks, carry, geometries, policy)
        carry = recency_carry(carry, blocks)


def _stream_opt_iter(
    source: ChunkSource, geometries: Sequence[CacheGeometry]
) -> Iterator[_ChunkYield]:
    """Two-pass streaming OPT: reverse next-use pass, forward carried stack.

    The reverse pass spills one absolute-next-use ``.npy`` per chunk to a
    pass-owned temporary directory (never the trace cache — these are
    replay intermediates, not compilation outputs); the forward pass resumes
    :func:`~repro.runtime.replay._opt_stack_pass` across chunks, one carried
    (stack, residency) state per (set count, scheme) — per set when
    ``sets > 1`` — at the max depth any geometry sharing the pass needs.
    """
    depth_for: Dict[Tuple[int, str], int] = {}
    for geom in geometries:
        sets = 1 if geom.is_fully_associative else geom.sets
        cap = geom.n_blocks if sets == 1 else geom.associativity
        key = (sets, _scheme_of(geom, sets))
        depth_for[key] = max(depth_for.get(key, 1), cap)
    total = source.accesses
    bounds = source.chunk_bounds()
    with tempfile.TemporaryDirectory(prefix="repro-optstream-") as tmp:
        paths = [Path(tmp) / f"next{i}.npy" for i in range(source.n_chunks)]
        carry_next: Dict[int, int] = {}
        for index in range(source.n_chunks - 1, -1, -1):
            blocks, _phases = source.chunk(index)
            lo = bounds[index][0]
            n_local = int(blocks.shape[0])
            local = next_occurrences(blocks)
            nxt = local + lo
            tail = np.flatnonzero(local >= n_local)
            if tail.shape[0]:
                nxt[tail] = np.asarray(
                    [carry_next.get(b, total) for b in blocks[tail].tolist()],
                    dtype=np.int64,
                )
            uniq, first = np.unique(blocks, return_index=True)
            for b, j in zip(uniq.tolist(), first.tolist()):
                carry_next[b] = lo + j
            np.save(paths[index], nxt)
        flat_states: Dict[Tuple[int, str], _OptState] = {}
        set_states: Dict[Tuple[int, str], Dict[int, _OptState]] = {}
        for index in range(source.n_chunks):
            blocks, phases = source.chunk(index)
            nxt = np.load(paths[index])
            lo = bounds[index][0]
            n_local = int(blocks.shape[0])
            dist: Dict[Tuple[int, str], np.ndarray] = {}
            for key, depth in depth_for.items():
                sets, scheme = key
                out = np.zeros(n_local, dtype=np.int64)
                if sets <= 1:
                    vals, st = _opt_stack_pass(
                        blocks.tolist(),
                        nxt.tolist(),
                        depth,
                        total=total,
                        positions=np.arange(
                            lo, lo + n_local, dtype=np.int64
                        ).tolist(),
                        state=flat_states.get(key),
                    )
                    flat_states[key] = st
                    out[:] = vals
                else:
                    per_set = set_states.setdefault(key, {})
                    set_idx = set_index_array(blocks, sets, scheme)
                    for seg in _set_segments(blocks, sets, scheme):
                        sid = int(set_idx[seg[0]])
                        vals, st = _opt_stack_pass(
                            blocks[seg].tolist(),
                            nxt[seg].tolist(),
                            depth,
                            total=total,
                            positions=(seg + lo).tolist(),
                            state=per_set.get(sid),
                        )
                        per_set[sid] = st
                        out[seg] = vals
                dist[key] = out
            masks: List[np.ndarray] = []
            for geom in geometries:
                sets = 1 if geom.is_fully_associative else geom.sets
                cap = geom.n_blocks if sets == 1 else geom.associativity
                d = dist[(sets, _scheme_of(geom, sets))]
                masks.append((d == 0) | (d > cap))
            yield blocks, phases, masks


def _carried_level_mask(
    blocks: np.ndarray,
    carry: np.ndarray,
    geom: CacheGeometry,
    memo: Dict[Tuple[object, ...], np.ndarray],
) -> np.ndarray:
    """One level's chunk miss mask under its stream's recency carry —
    the streaming twin of :func:`~repro.runtime.replay._lru_level_mask`,
    memoizing the sliced pass per organization key."""
    k = int(carry.shape[0])
    if geom.ways == 1:
        scheme = _scheme_of(geom, geom.n_blocks)
        key = ("direct", geom.n_blocks, scheme)
        hit = memo.get(key)
        if hit is None:
            synth = np.concatenate([carry, blocks])
            hit = memo[key] = _direct_hit_mask(synth, geom.n_blocks, scheme)[k:]
        return ~hit
    sets = 1 if geom.is_fully_associative else geom.sets
    scheme = _scheme_of(geom, sets)
    key = ("lru", sets, scheme)
    d = memo.get(key)
    if d is None:
        synth = np.concatenate([carry, blocks])
        d = memo[key] = per_set_stack_distances(synth, sets, scheme)[k:]
    ways = geom.associativity if sets > 1 else geom.n_blocks
    return (d == 0) | (d > ways)


def _stream_two_level_iter(
    source: ChunkSource, geometries: Sequence[CacheGeometry]
) -> Iterator[_ChunkYield]:
    """Streaming hierarchies: L1 via the global carry, L2 via one carry per
    L1 group over that group's miss sub-stream (which depends only on L1),
    chunk verdicts scattered back — no full-trace mask ever materializes."""
    for tg in geometries:
        if not isinstance(tg, TwoLevelGeometry):
            raise CacheConfigError(
                f"policy 'two_level' sweeps TwoLevelGeometry points, got {tg!r}"
            )
    groups: Dict[CacheGeometry, List[int]] = {}
    for i, tg in enumerate(geometries):
        groups.setdefault(cast(TwoLevelGeometry, tg).l1, []).append(i)
    global_carry = np.zeros(0, dtype=np.int64)
    sub_carries: Dict[CacheGeometry, np.ndarray] = {}
    for index in range(source.n_chunks):
        blocks, phases = source.chunk(index)
        n_local = int(blocks.shape[0])
        l1_memo: Dict[Tuple[object, ...], np.ndarray] = {}
        out: List[Optional[np.ndarray]] = [None] * len(geometries)
        for l1, idxs in groups.items():
            l1_mask = _carried_level_mask(blocks, global_carry, l1, l1_memo)
            pos = np.flatnonzero(l1_mask)
            sub = blocks[pos]
            sub_carry = sub_carries.get(l1)
            if sub_carry is None:
                sub_carry = np.zeros(0, dtype=np.int64)
            l2_memo: Dict[Tuple[object, ...], np.ndarray] = {}
            for i in idxs:
                tg2 = cast(TwoLevelGeometry, geometries[i])
                l2_miss_sub = _carried_level_mask(sub, sub_carry, tg2.l2, l2_memo)
                full = np.zeros(n_local, dtype=bool)
                full[pos[l2_miss_sub]] = True  # memory miss = L1 miss AND L2 miss
                out[i] = full
            sub_carries[l1] = recency_carry(sub_carry, sub)
        global_carry = recency_carry(global_carry, blocks)
        yield blocks, phases, cast(List[np.ndarray], out)


def _chunk_mask_iter(
    source: ChunkSource, geometries: Sequence[CacheGeometry], policy: str
) -> Iterator[_ChunkYield]:
    get_policy(policy)  # unknown names fail with the standard message
    if policy in ("lru", "direct"):
        yield from _stream_flat_iter(source, geometries, policy)
    elif policy == "opt":
        yield from _stream_opt_iter(source, geometries)
    elif policy == "two_level":
        yield from _stream_two_level_iter(source, geometries)
    else:
        raise CacheConfigError(
            f"policy {policy!r} has no streaming replay kernel; "
            f"available: {list(STREAMING_POLICIES)}"
        )


# ----------------------------------------------------------------------
# public replay surface
# ----------------------------------------------------------------------
def stream_masks(
    source: ChunkSource,
    geometries: Sequence[CacheGeometry],
    policy: str = "lru",
) -> List[np.ndarray]:
    """Full-length per-geometry miss masks, assembled chunk by chunk.

    This materializes O(trace) booleans per geometry — it exists for the
    differential suite (mask-for-mask comparison against
    :func:`~repro.runtime.replay.replay_miss_masks`); the production stats
    path (:func:`stream_stats`) never builds them.
    """
    geoms = list(geometries)
    parts: List[List[np.ndarray]] = [[] for _ in geoms]
    for _blocks, _phases, masks in _chunk_mask_iter(source, geoms, policy):
        for gi, mask in enumerate(masks):
            parts[gi].append(mask)
    return [
        np.concatenate(p) if p else np.zeros(0, dtype=bool) for p in parts
    ]


def stream_stats(
    source: ChunkSource,
    geometries: Sequence[CacheGeometry],
    policy: str = "lru",
) -> StreamStats:
    """Reduced per-geometry ``(misses, phase_bincount)`` over a chunk source.

    The bounded-memory replay path: per-chunk masks are reduced immediately
    and discarded, so peak memory is O(chunk + carried state) regardless of
    trace length.  Sums are exact — chunk bincounts add — so the totals are
    bit-identical to the monolithic replay's.
    """
    geoms = list(geometries)
    obs.add(obs_names.REPLAY_GEOMETRIES, len(geoms))
    totals = [0] * len(geoms)
    counts: List[Optional[List[int]]] = [None] * len(geoms)
    with obs.span(obs_names.STREAM_REPLAY, policy=policy):
        for _blocks, phases, masks in _chunk_mask_iter(source, geoms, policy):
            obs.add(obs_names.STREAM_CHUNKS)
            for gi, mask in enumerate(masks):
                totals[gi] += int(np.count_nonzero(mask))
                if phases is not None:
                    bc = np.bincount(
                        phases[mask], minlength=len(PHASE_NAMES)
                    ).tolist()
                    prev = counts[gi]
                    counts[gi] = (
                        bc if prev is None else [a + b for a, b in zip(prev, bc)]
                    )
    return list(zip(totals, counts))


def simulate_stream(
    trace: "CompiledTrace | ChunkedTrace",
    geometries: Sequence[CacheGeometry],
    policy: str = "lru",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    chunk_words: Optional[int] = None,
) -> List[ExecutionResult]:
    """Chunked twin of :func:`~repro.runtime.compiled.simulate_trace`.

    A :class:`ChunkedTrace` replays at its own chunking (``chunk_words=`` is
    ignored — the segments are already cut); an in-memory trace is viewed
    through :class:`ArrayChunkSource` at ``chunk_words``.  On the process
    backend, lru/direct sweeps over a :class:`ChunkedTrace` fan chunks out
    over a pool (:func:`repro.runtime.backend.process_chunk_sweep`); any
    worker failure falls back to the sequential stream, which computes the
    identical answer.
    """
    geoms = list(geometries)
    get_policy(policy)
    source: ChunkSource
    if isinstance(trace, ChunkedTrace):
        source = trace
    else:
        source = ArrayChunkSource(
            trace.blocks,
            trace.phases,
            chunk_words=(
                chunk_words if chunk_words is not None else max(1, trace.accesses)
            ),
        )
    from repro.runtime.backend import resolve

    name, width = resolve(backend, workers, max(1, source.n_chunks))
    stats: Optional[StreamStats] = None
    if (
        name == "process"
        and isinstance(trace, ChunkedTrace)
        and policy in ("lru", "direct")
        and source.n_chunks
        and geoms
    ):
        from repro.runtime.backend import process_chunk_sweep

        try:
            stats = process_chunk_sweep(trace, geoms, policy, width)
        except Exception:
            # a dead worker or an unpicklable corner falls back to the
            # sequential stream — same answer, one process
            stats = None
    if stats is None:
        stats = stream_stats(source, geoms, policy)
    obs.add(obs_names.REPLAY_MISSES, sum(m for m, _c in stats))
    ct = cast(CompiledTrace, trace)
    return [_result_from_stats(ct, m, c) for m, c in stats]
