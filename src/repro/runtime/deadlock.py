"""Deadlock analysis and demand-driven schedule construction.

Section 3 of the paper leans on two facts about rate-matched dags:

1. With ``minBuf`` capacities on internal edges, a component "can always be
   scheduled at the lower level without overflowing these buffers" [17].
   :func:`demand_driven_schedule` constructs such a low-level schedule:
   repeatedly fire any module that both has enough inputs and whose outputs
   fit, preferring modules *later* in topological order (draining before
   filling keeps occupancies minimal).
2. Buffer capacities on cross edges must keep *some* component schedulable
   at all times; :func:`fireable_modules` is the primitive that dynamic
   schedulers poll.

These functions operate on token counts only (no cache); the executor
applies the resulting firing sequences to the memory simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import DeadlockError, ScheduleError
from repro.graphs.sdf import StreamGraph

__all__ = ["can_fire", "fireable_modules", "demand_driven_schedule"]


def can_fire(
    graph: StreamGraph,
    name: str,
    tokens: Dict[int, int],
    capacities: Optional[Dict[int, int]] = None,
    allow_source: bool = True,
) -> bool:
    """True when ``name`` has sufficient inputs and sufficient output space.

    Sources are input-free; ``allow_source=False`` excludes them, which
    low-level component schedulers use when source firings are rationed by
    the high-level batching.
    """
    ins = graph.in_channels(name)
    if not ins and not allow_source:
        return False
    for ch in ins:
        if tokens.get(ch.cid, 0) < ch.in_rate:
            return False
    caps = capacities or {}
    for ch in graph.out_channels(name):
        cap = caps.get(ch.cid)
        if cap is not None and tokens.get(ch.cid, 0) + ch.out_rate > cap:
            return False
    return True


def fireable_modules(
    graph: StreamGraph,
    tokens: Dict[int, int],
    capacities: Optional[Dict[int, int]] = None,
    among: Optional[Sequence[str]] = None,
    allow_source: bool = True,
) -> List[str]:
    """All modules (optionally restricted to ``among``) that can fire now."""
    names = among if among is not None else graph.module_names()
    return [n for n in names if can_fire(graph, n, tokens, capacities, allow_source)]


def demand_driven_schedule(
    graph: StreamGraph,
    target_fires: Dict[str, int],
    capacities: Optional[Dict[int, int]] = None,
    initial_tokens: Optional[Dict[int, int]] = None,
    prefer_downstream: bool = True,
) -> List[str]:
    """Fire each module exactly ``target_fires[name]`` times, never breaking
    feasibility, and return the firing order.

    Strategy: at each step fire the *latest* (in topological order) module
    that still owes firings and can fire — "repeatedly choosing any module
    that can be fired without exceeding output buffer size" (Section 3), with
    the downstream preference keeping buffer occupancy minimal so the
    ``minBuf`` capacities suffice.  Set ``prefer_downstream=False`` to prefer
    upstream modules instead (useful in tests to exhibit higher occupancy).

    Raises
    ------
    DeadlockError
        If no owing module can fire before all targets are met.  For
        rate-matched targets (multiples of the repetition vector) with
        capacities >= minBuf this cannot happen [17]; reaching it signals
        either inconsistent targets or undersized buffers.
    """
    order = graph.topological_order()
    rank = {n: i for i, n in enumerate(order)}
    owed: Dict[str, int] = {n: int(c) for n, c in target_fires.items() if c > 0}
    for n in owed:
        graph.module(n)

    tokens: Dict[int, int] = {ch.cid: ch.delay for ch in graph.channels()}
    if initial_tokens:
        tokens.update(initial_tokens)

    firings: List[str] = []
    total = sum(owed.values())
    candidates = sorted(owed, key=lambda n: rank[n], reverse=prefer_downstream)
    while total > 0:
        fired = None
        for n in candidates:
            if owed.get(n, 0) > 0 and can_fire(graph, n, tokens, capacities):
                fired = n
                break
        if fired is None:
            owing = {n: c for n, c in owed.items() if c > 0}
            raise DeadlockError(
                f"no fireable module among {sorted(owing)}; "
                f"occupancies={{cid: t for cid, t in tokens.items() if t}}"
                f" = { {cid: t for cid, t in tokens.items() if t} }"
            )
        for ch in graph.in_channels(fired):
            tokens[ch.cid] -= ch.in_rate
        for ch in graph.out_channels(fired):
            tokens[ch.cid] += ch.out_rate
        owed[fired] -= 1
        total -= 1
        firings.append(fired)
    return firings
