"""Circular FIFO buffers bound to memory regions.

Each channel's buffer occupies one contiguous region of the simulated
address space (:class:`repro.mem.layout.Region`).  Tokens are unit words;
the FIFO is circular, so a push or pop of ``k`` tokens touches one or two
contiguous word ranges (two when the window wraps the end of the region).

The buffer does not talk to the cache itself — it returns the address ranges
a transfer touches and lets :class:`repro.runtime.executor.Executor` feed
them to the cache model, keeping the data structure testable in isolation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import BufferOverflowError, ScheduleError
from repro.mem.layout import Region

__all__ = ["ChannelBuffer"]


class ChannelBuffer:
    """Bounded circular FIFO of unit-word tokens.

    Attributes
    ----------
    cid:
        Channel id this buffer serves.
    region:
        Word range backing the buffer; ``region.length`` is the capacity.
    """

    def __init__(self, cid: int, region: Region) -> None:
        if region.length <= 0:
            raise ScheduleError(f"channel {cid}: buffer capacity must be positive")
        self.cid = cid
        self.region = region
        self._head = 0  # index of the oldest token (read side)
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.region.length

    @property
    def tokens(self) -> int:
        return self._count

    @property
    def free(self) -> int:
        return self.capacity - self._count

    # ------------------------------------------------------------------
    def _ranges(self, offset: int, k: int) -> List[Tuple[int, int]]:
        """Address ranges for ``k`` slots starting at circular ``offset``."""
        cap = self.capacity
        base = self.region.start
        start = (self._head + offset) % cap
        if start + k <= cap:
            return [(base + start, k)]
        first = cap - start
        return [(base + start, first), (base, k - first)]

    def push_ranges(self, k: int) -> List[Tuple[int, int]]:
        """Address ranges a push of ``k`` tokens writes, then commit it.

        Raises :class:`BufferOverflowError` when ``k`` tokens do not fit —
        schedulers must check :attr:`free` first (the paper's schedulability
        condition: "enough space remains in the output buffers").
        """
        if k < 0:
            raise ScheduleError(f"channel {self.cid}: cannot push {k} tokens")
        if k > self.free:
            raise BufferOverflowError(
                f"channel {self.cid}: push of {k} exceeds free space "
                f"{self.free}/{self.capacity}"
            )
        ranges = self._ranges(self._count, k)
        self._count += k
        return ranges

    def pop_ranges(self, k: int) -> List[Tuple[int, int]]:
        """Address ranges a pop of ``k`` tokens reads, then commit it.

        Raises :class:`ScheduleError` when fewer than ``k`` tokens are
        buffered (firing a module without sufficient input).
        """
        if k < 0:
            raise ScheduleError(f"channel {self.cid}: cannot pop {k} tokens")
        if k > self._count:
            raise ScheduleError(
                f"channel {self.cid}: pop of {k} exceeds occupancy {self._count}"
            )
        ranges = self._ranges(0, k)
        self._head = (self._head + k) % self.capacity
        self._count -= k
        return ranges

    def prefill(self, k: int) -> None:
        """Mark ``k`` tokens as already present (SDF delay / initial tokens).

        Only valid on an empty, unused buffer; the tokens occupy the first
        ``k`` slots of the region.  The words are treated as initialized in
        memory (reading them later costs ordinary block transfers, same as
        any cold data)."""
        if self._count or self._head:
            raise ScheduleError(f"channel {self.cid}: prefill on a used buffer")
        if k < 0 or k > self.capacity:
            raise ScheduleError(
                f"channel {self.cid}: prefill of {k} invalid for capacity {self.capacity}"
            )
        self._count = k

    def peek_occupancy(self) -> Tuple[int, int]:
        """(head index, token count) — for tests and debugging."""
        return (self._head, self._count)

    def __repr__(self) -> str:
        return (
            f"ChannelBuffer(cid={self.cid}, tokens={self._count}/{self.capacity}, "
            f"region=[{self.region.start},{self.region.end}))"
        )
