"""The firing engine: executes schedules against the cache simulator.

This is the measurement instrument for every experiment.  Executing a firing
of module ``v`` does exactly what Section 2 prescribes:

1. *load state* — touch all ``s(v)`` words of ``v``'s state region ("the
   entire state of that module must be loaded into the cache");
2. *consume* — pop ``in(u, v)`` tokens from each input channel, touching the
   popped words in the channel's circular buffer;
3. *produce* — push ``out(v, w)`` tokens on each output channel, touching
   the written words.

Sources additionally read fresh words from an unbounded external input
stream and sinks write to an external output stream (monotonically
increasing addresses ⇒ one compulsory miss per ``B`` tokens).  A source
firing reads one external word per token it produces and a sink firing
writes one word per token it consumes (:func:`source_stream_words` /
:func:`sink_stream_words`), so multi-rate graphs pay the stream cost per
*data item*, not per firing.  This keeps the accounting identical across
schedulers — every schedule pays the same Θ(T/B) stream cost, matching the
paper's "per data item that enters the graph" normalization — and can be
disabled for experiments that charge only internal traffic.

Misses are attributed to phases (``state`` / ``data`` / ``stream``) so
experiments can decompose cost the way Lemma 4 and Lemma 8 do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.base import CacheGeometry, CacheModel
from repro.cache.lru import LRUCache
from repro.errors import ScheduleError
from repro.graphs.minbuf import min_buffers
from repro.graphs.sdf import StreamGraph
from repro.mem.layout import MemoryLayout, ObjectKey
from repro.runtime.buffers import ChannelBuffer
from repro.runtime.schedule import Schedule

__all__ = [
    "Executor",
    "ExecutionResult",
    "EXT_OUT_SPAN",
    "build_memory_plan",
    "require_input_tokens",
    "require_output_space",
    "source_stream_words",
    "sink_stream_words",
]

#: Words between the external input and output stream arenas.  Shared with
#: the placement remap (:mod:`repro.mem.placement`), which must reproduce
#: this arithmetic exactly to relocate stream blocks.
EXT_OUT_SPAN = 1 << 40


def require_input_tokens(name: str, src: str, dst: str, have: int, need: int) -> None:
    """Section 2 schedulability: a firing must find its input tokens.

    Shared by the executor and the trace compiler so the rule (and its
    diagnostic) cannot drift between the two paths.
    """
    if have < need:
        raise ScheduleError(
            f"firing {name!r}: channel {src}->{dst} has {have} tokens, needs {need}"
        )


def require_output_space(name: str, src: str, dst: str, free: int, need: int) -> None:
    """Section 2 schedulability: a firing must find room for its outputs."""
    if free < need:
        raise ScheduleError(
            f"firing {name!r}: channel {src}->{dst} lacks space "
            f"({free} free, needs {need})"
        )


def build_memory_plan(
    graph: StreamGraph,
    block: int,
    capacities: Optional[Dict[int, int]] = None,
    layout_order: Optional[Iterable[str]] = None,
    placement: Optional[Sequence[ObjectKey]] = None,
    gaps: Optional[Dict[ObjectKey, int]] = None,
) -> Tuple[Dict[int, int], MemoryLayout, int, int]:
    """Shared Executor / TraceCompiler memory setup.

    Returns ``(caps, layout, ext_in_base, ext_out_base)``: the minBuf-overlaid
    buffer capacities, the placed :class:`~repro.mem.layout.MemoryLayout`,
    and the block-aligned external stream arena bases.  Both execution paths
    build from this one function so their address spaces — and therefore
    their block traces — can never drift apart.

    ``layout_order`` keeps the state-first convention; ``placement`` fixes
    the complete object order (state regions and buffers interleaved) the
    way :meth:`repro.mem.layout.MemoryLayout.place_graph` documents —
    conflict-aware optimized layouts come through here.  ``gaps`` inserts
    deliberate block-granular padding before chosen objects (same
    semantics as ``place_graph(gaps=)``); the stream arenas shift with the
    padded footprint, which the placement remap reproduces to the word.
    """
    # Start from minBuf everywhere and overlay the caller's sizes, so a
    # scheduler may specify only the channels it enlarges (cross edges).
    caps = dict(min_buffers(graph))
    if capacities:
        caps.update(capacities)
    layout = MemoryLayout(block=block)
    layout.place_graph(graph, caps, order=layout_order, placement=placement, gaps=gaps)
    layout.check_disjoint()
    # External streams live beyond the layout footprint, in disjoint
    # half-open arenas that only ever grow forward.  Block-aligned so
    # stream traffic costs exactly one miss per B tokens.
    ext_in_base = (layout.footprint // block + 2) * block
    # far beyond any input position, and itself block-aligned
    ext_out_base = ext_in_base + (EXT_OUT_SPAN // block) * block
    return caps, layout, ext_in_base, ext_out_base


def source_stream_words(graph: StreamGraph, name: str) -> int:
    """External input words a source firing consumes.

    A source emitting ``k`` tokens per firing on a channel reads ``k`` fresh
    items; a source fanning out to several channels is treated as a
    duplicate splitter (the StreamIt broadcast convention), reading each
    item once however many branches receive it — hence the max over
    channels, not the sum.  An isolated module (no channels at all) still
    counts as one item per firing.
    """
    return max([ch.out_rate for ch in graph.out_channels(name)], default=1)


def sink_stream_words(graph: StreamGraph, name: str) -> int:
    """External output words a sink firing produces (mirror convention:
    ``k`` tokens consumed from a channel emit ``k`` items; fan-in branches
    are merged copies of one result stream, counted once)."""
    return max([ch.in_rate for ch in graph.in_channels(name)], default=1)


@dataclass
class ExecutionResult:
    """Outcome of running one schedule through the simulator."""

    label: str
    firings: int
    misses: int
    accesses: int
    phase_misses: Dict[str, int] = field(default_factory=dict)
    fire_counts: Dict[str, int] = field(default_factory=dict)
    source_fires: int = 0
    sink_fires: int = 0

    @property
    def misses_per_source_fire(self) -> float:
        """Amortized cache misses per input item — the paper's unit of cost.

        A run with zero misses costs 0.0 whether or not any source fired; a
        sourceless run that did miss has no per-input normalization and
        reports ``inf``.
        """
        if self.source_fires:
            return self.misses / self.source_fires
        return 0.0 if self.misses == 0 else float("inf")

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v}" for k, v in sorted(self.phase_misses.items()))
        return (
            f"{self.label}: misses={self.misses} ({phases}) over {self.firings} firings, "
            f"{self.source_fires} inputs -> {self.misses_per_source_fire:.3f} misses/input"
        )


class Executor:
    """Binds a graph + buffer sizes + cache model into a runnable system.

    Parameters
    ----------
    graph:
        Stream graph to execute.
    geometry:
        Cache geometry (M, B).
    capacities:
        Channel id -> buffer capacity in tokens.  Defaults to ``minBuf`` on
        every channel (paper convention) — partition schedulers pass their
        enlarged cross-edge capacities instead.
    cache:
        Cache model instance; defaults to a fresh fully-associative LRU of
        ``geometry``.  Pass a :class:`repro.mem.trace.TracingCache` to record
        block traces.
    layout_order:
        Module placement order for the state arena (default topological);
        partition schedulers pass component-grouped orders.
    placement:
        Complete object placement (state + buffer keys, mutually exclusive
        with ``layout_order``) — optimized layouts from
        :mod:`repro.mem.placement`.
    gaps:
        Deliberate block-granular padding per object key (see
        :meth:`repro.mem.layout.MemoryLayout.place_graph`).
    count_external:
        Charge source input reads / sink output writes against the cache
        (default True).
    """

    def __init__(
        self,
        graph: StreamGraph,
        geometry: CacheGeometry,
        capacities: Optional[Dict[int, int]] = None,
        cache: Optional[CacheModel] = None,
        layout_order: Optional[Iterable[str]] = None,
        count_external: bool = True,
        placement: Optional[Sequence[ObjectKey]] = None,
        gaps: Optional[Dict[ObjectKey, int]] = None,
    ) -> None:
        self.graph = graph
        self.geometry = geometry
        self.cache = cache if cache is not None else LRUCache(geometry)
        caps, self.layout, self._ext_in_base, self._ext_out_base = build_memory_plan(
            graph, geometry.block, capacities=capacities, layout_order=layout_order,
            placement=placement, gaps=gaps,
        )
        self.capacities = caps
        self.buffers: Dict[int, ChannelBuffer] = {
            cid: ChannelBuffer(cid, self.layout.buffer_region(cid)) for cid in caps
        }
        for ch in graph.channels():
            if ch.delay:
                self.buffers[ch.cid].prefill(ch.delay)

        self.count_external = count_external
        sources = graph.sources()
        sinks = graph.sinks()
        self._source_set = set(sources)
        self._sink_set = set(sinks)
        self._ext_in_pos = 0
        self._ext_out_pos = 0
        self._source_words = {n: source_stream_words(graph, n) for n in sources}
        self._sink_words = {n: sink_stream_words(graph, n) for n in sinks}

        self._fire_counts: Dict[str, int] = {}
        self._total_firings = 0
        self._source_fires = 0
        self._sink_fires = 0

    # ------------------------------------------------------------------
    def tokens(self) -> Dict[int, int]:
        """Current channel occupancies."""
        return {cid: buf.tokens for cid, buf in self.buffers.items()}

    def fire(self, name: str) -> None:
        """Execute one firing of ``name`` (validates feasibility)."""
        graph = self.graph
        mod = graph.module(name)
        cache = self.cache
        stats = cache.stats

        in_chs = graph.in_channels(name)
        out_chs = graph.out_channels(name)
        for ch in in_chs:
            require_input_tokens(name, ch.src, ch.dst, self.buffers[ch.cid].tokens, ch.in_rate)
        for ch in out_chs:
            require_output_space(name, ch.src, ch.dst, self.buffers[ch.cid].free, ch.out_rate)

        stats.set_phase("state")
        region = self.layout.state_region(name)
        if region.length:
            cache.access_range(region.start, region.length)

        stats.set_phase("data")
        for ch in in_chs:
            for start, length in self.buffers[ch.cid].pop_ranges(ch.in_rate):
                cache.access_range(start, length)
        for ch in out_chs:
            for start, length in self.buffers[ch.cid].push_ranges(ch.out_rate):
                cache.access_range(start, length)

        if self.count_external:
            stats.set_phase("stream")
            if name in self._source_set:
                k = self._source_words[name]
                cache.access_range(self._ext_in_base + self._ext_in_pos, k)
                self._ext_in_pos += k
            if name in self._sink_set:
                k = self._sink_words[name]
                cache.access_range(self._ext_out_base + self._ext_out_pos, k)
                self._ext_out_pos += k
        stats.set_phase("")

        self._fire_counts[name] = self._fire_counts.get(name, 0) + 1
        self._total_firings += 1
        if name in self._source_set:
            self._source_fires += 1
        if name in self._sink_set:
            self._sink_fires += 1

    def run(self, schedule: Schedule) -> ExecutionResult:
        """Execute every firing of ``schedule`` and return the accounting.

        Accepts a flat :class:`Schedule` or a
        :class:`repro.runtime.looped.LoopedSchedule` (anything exposing
        ``firings_iter()`` or ``firings``) — iteration only, never indexing,
        so looped schedules run without being materialized."""
        it = (
            schedule.firings_iter()
            if hasattr(schedule, "firings_iter")
            else schedule.firings
        )
        for name in it:
            self.fire(name)
        return self.result(schedule.label)

    def result(self, label: str = "run") -> ExecutionResult:
        stats = self.cache.stats
        return ExecutionResult(
            label=label,
            firings=self._total_firings,
            misses=stats.misses,
            accesses=stats.accesses,
            phase_misses=dict(stats.phase_misses),
            fire_counts=dict(self._fire_counts),
            source_fires=self._source_fires,
            sink_fires=self._sink_fires,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def measure(
        graph: StreamGraph,
        geometry: CacheGeometry,
        schedule: Schedule,
        layout_order: Optional[Iterable[str]] = None,
        count_external: bool = True,
        cache: Optional[CacheModel] = None,
        placement: Optional[Sequence[ObjectKey]] = None,
        gaps: Optional[Dict[ObjectKey, int]] = None,
    ) -> ExecutionResult:
        """One-shot convenience: build an executor with the schedule's own
        capacities, run it, return the result."""
        ex = Executor(
            graph,
            geometry,
            capacities=schedule.capacities,
            layout_order=layout_order,
            count_external=count_external,
            cache=cache,
            placement=placement,
            gaps=gaps,
        )
        return ex.run(schedule)
