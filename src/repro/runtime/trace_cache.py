"""Persistent content-addressed cache of compiled traces.

Trace compilation (:mod:`repro.runtime.compiled`) is the expensive,
*deterministic* half of every query this library answers: the block trace a
schedule compiles to depends only on (graph structure, firing sequence,
buffer capacities, block size, layout order / placement / gaps) — never on
the cache geometry, which is exactly why one trace serves whole geometry
sweeps.  Repeated sweeps, experiments, and CI runs therefore recompile
byte-identical traces over and over.  This module makes that work
content-addressed and persistent:

* :func:`trace_digest` maps the complete compilation input to a stable
  SHA-256 hex key.  The digest is computed over a canonical JSON encoding
  (sorted keys, no floats) of the graph's serialized structure
  (:func:`repro.graphs.io.graph_to_dict`), the firing sequence, the
  effective capacities, the block size, and the layout/placement/gap
  inputs — so it is identical across processes, interpreter sessions, and
  machines, and *any* semantic change (one firing, one gap block, a
  different placement order) changes the key.  Geometry fields (``ways``,
  set counts, index scheme) are deliberately absent: traces are
  geometry-independent, and a digest that varied with them would shatter
  the cache across sweep points that share one trace.
* :func:`query_digest` extends a trace key with (geometry, policy) for
  callers that memoize *answers* rather than traces — there the
  organization does matter, so a ways change yields a different key.
* :class:`TraceCache` stores one ``<digest>.npz`` per entry under a cache
  directory: versioned format, atomic writes (temp file + ``os.replace``),
  size-capped LRU eviction (least-recently-*used*, via file mtimes that
  every hit refreshes), and hit/miss/eviction/corruption counters.  A
  corrupted or truncated entry is treated as a miss and deleted — callers
  recompile, they never crash.
* :func:`cached_compile_trace` is the front door:
  digest → ``get`` → on miss compile and ``put``.

``configure()`` installs a process-wide default cache (what the CLI's
``--cache-dir`` does); :func:`repro.runtime.compiled.compile_trace`
consults it when no explicit ``cache=`` is passed, so a configured process
caches transparently.  By default no cache is configured and nothing
touches disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CacheConfigError
from repro.obs import core as obs
from repro.obs import names as obs_names
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # runtime.compiled imports this module lazily (and vice versa)
    from repro.cache.base import CacheGeometry
    from repro.graphs.sdf import StreamGraph
    from repro.mem.layout import ObjectKey
    from repro.runtime.compiled import CompiledTrace
    from repro.runtime.schedule import Schedule

__all__ = [
    "FORMAT_VERSION",
    "trace_digest",
    "query_digest",
    "segment_digest",
    "CacheCounters",
    "TraceCache",
    "cached_compile_trace",
    "configure",
    "default_cache",
]

#: On-disk entry format version.  Bump on any layout change: entries written
#: by another version deserialize as *corrupt* (= recompile), never as data.
FORMAT_VERSION = 1

#: Default size cap: generous for trace files (a 100k-access trace is
#: ~900 KB), small enough that a forgotten cache directory stays polite.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


# ----------------------------------------------------------------------
# content digests
# ----------------------------------------------------------------------
def _canon(obj: object) -> bytes:
    """Canonical JSON bytes: sorted keys, tightest separators, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _object_keys(keys: Optional[Iterable["ObjectKey"]]) -> Optional[List[List[object]]]:
    if keys is None:
        return None
    return [[str(kind), key] for kind, key in keys]


def trace_digest(
    graph: "StreamGraph",
    schedule: "Schedule",
    block: int,
    capacities: Optional[Dict[int, int]] = None,
    layout_order: Optional[Iterable[str]] = None,
    count_external: bool = True,
    placement: Optional[Sequence["ObjectKey"]] = None,
    gaps: Optional[Dict["ObjectKey", int]] = None,
) -> str:
    """Stable SHA-256 key of one compilation's complete input.

    Mirrors the signature of :func:`repro.runtime.compiled.compile_trace`
    exactly — including its convention that ``capacities=None`` means "the
    schedule's own" — so the digest covers precisely what the compiled
    trace depends on.  The firing sequence is folded incrementally (looped
    schedules stream through :meth:`firings_iter` without materializing),
    and everything else goes through one canonical JSON header, so the key
    is reproducible across processes and interpreter sessions.
    """
    from repro.graphs.io import graph_to_dict

    if capacities is None:
        capacities = getattr(schedule, "capacities", None)
    header = {
        "v": FORMAT_VERSION,
        "graph": graph_to_dict(graph),
        "block": int(block),
        "capacities": None
        if capacities is None
        else sorted((int(k), None if v is None else int(v)) for k, v in capacities.items()),
        "layout_order": None if layout_order is None else list(layout_order),
        "count_external": bool(count_external),
        "placement": _object_keys(placement),
        "gaps": None
        if gaps is None
        else sorted([str(kind), key, int(g)] for (kind, key), g in gaps.items()),
        "label": getattr(schedule, "label", "schedule"),
    }
    h = hashlib.sha256()
    h.update(_canon(header))
    it = (
        schedule.firings_iter()
        if hasattr(schedule, "firings_iter")
        else schedule.firings
    )
    chunk: List[str] = []
    for name in it:
        chunk.append(name)
        if len(chunk) >= 4096:
            h.update("\x00".join(chunk).encode("utf-8") + b"\x00")
            chunk = []
    if chunk:
        h.update("\x00".join(chunk).encode("utf-8") + b"\x00")
    return h.hexdigest()


def segment_digest(trace_key: str, index: int, chunk_words: int) -> str:
    """Key of one fixed-size chunk of a chunked compilation.

    Streaming compilation (:mod:`repro.runtime.streaming`) spills each
    ``chunk_words``-access segment of a trace as its own cache entry, so a
    corrupted segment recompiles alone instead of invalidating the whole
    trace.  The key binds the parent :func:`trace_digest`, the segment
    index, and the chunk size — the same trace chunked differently stores
    under disjoint keys, and segment ``i`` of one chunking can never alias
    segment ``i`` of another.
    """
    payload = {
        "kind": "trace_segment",
        "format": FORMAT_VERSION,
        "trace": trace_key,
        "index": int(index),
        "chunk_words": int(chunk_words),
    }
    return hashlib.sha256(_canon(payload)).hexdigest()


def _geometry_facts(geom: object) -> object:
    """JSON-stable description of a sweep point (single- or two-level)."""
    l1 = getattr(geom, "l1", None)
    if l1 is not None:  # TwoLevelGeometry
        return ["two_level", _geometry_facts(l1), _geometry_facts(getattr(geom, "l2"))]
    return [
        int(getattr(geom, "size")),
        int(getattr(geom, "block")),
        getattr(geom, "ways", None),
        getattr(geom, "index_scheme", "mod"),
    ]


def query_digest(
    trace_key: str,
    geometries: Sequence[object],
    policy: str,
) -> str:
    """Key of one *answer*: a trace key plus the sweep's organizations.

    Unlike :func:`trace_digest`, the organization matters here — changing
    ``ways``, the set count, or the index scheme changes which misses the
    replay reports, so it changes this key.
    """
    payload = {
        "trace": trace_key,
        "policy": str(policy),
        "geometries": [_geometry_facts(g) for g in geometries],
    }
    return hashlib.sha256(_canon(payload)).hexdigest()


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------
@dataclass
class CacheCounters:
    """Observable cache behaviour: every lookup lands in exactly one of
    ``hits``/``misses``; ``corrupt`` counts entries that existed but failed
    to deserialize (each also counts as a miss); ``evictions`` counts
    entries removed to respect the size cap.

    Since the obs migration this is a *snapshot view*: the live tallies
    are counters in the cache's per-instance
    :class:`~repro.obs.registry.MetricsRegistry` (``cache.metrics``),
    mirrored into the global :mod:`repro.obs` registry while
    instrumentation is enabled.  ``cache.counters`` builds a fresh
    ``CacheCounters`` per access, so reads keep working unchanged;
    mutating the returned object changes nothing."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }


class TraceCache:
    """A directory of content-addressed compiled traces.

    One entry per key: ``<sha256>.npz`` holding the block/phase arrays plus
    a JSON metadata record (format version, key echo, trace metadata).
    Writes are atomic (temp file in the same directory, then
    ``os.replace``), so a crashed or concurrent writer can never publish a
    half-written entry; readers treat any undeserializable file as a miss,
    delete it, and count it in :attr:`counters`.

    Eviction is size-capped LRU: every hit refreshes the entry's mtime, and
    :meth:`put` evicts least-recently-used entries until the directory fits
    ``max_bytes`` again.  The cap is a soft bound checked after each write
    — a single entry larger than the cap is stored (and is the only entry).
    """

    def __init__(
        self, path: Union[str, Path], max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        if max_bytes <= 0:
            raise CacheConfigError(
                f"trace cache max_bytes must be positive, got {max_bytes}"
            )
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.metrics = MetricsRegistry()

    # -- internals ------------------------------------------------------
    def _count(self, name: str) -> None:
        """Tally ``name`` on this cache and mirror it into the global obs
        registry (a no-op there unless instrumentation is enabled)."""
        self.metrics.add(name, 1)
        # every call site passes a repro.obs.names constant; the forwarder
        # itself cannot be checked statically
        obs.add(name, 1)  # repro-lint: disable=R6

    @property
    def counters(self) -> CacheCounters:
        """Hit/miss/evict/corrupt tallies as a :class:`CacheCounters` view
        over the per-instance metrics registry."""
        return CacheCounters(
            hits=self.metrics.counter_value(obs_names.CACHE_HITS),
            misses=self.metrics.counter_value(obs_names.CACHE_MISSES),
            evictions=self.metrics.counter_value(obs_names.CACHE_EVICTIONS),
            corrupt=self.metrics.counter_value(obs_names.CACHE_CORRUPT),
        )

    @property
    def stats(self) -> Dict[str, int]:
        """The counters as a plain dict (``counters.as_dict()`` shorthand)."""
        return self.counters.as_dict()

    def _entry_path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise CacheConfigError(
                f"trace cache keys are lowercase hex digests, got {key!r}"
            )
        return self.path / f"{key}.npz"

    def _entries(self) -> List[Path]:
        return [p for p in self.path.glob("*.npz")]

    def _discard(self, entry: Path) -> None:
        try:
            entry.unlink()
        except OSError:  # pragma: no cover - raced by another process
            pass

    # -- public surface -------------------------------------------------
    def has(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` — no validation, no
        counter, no LRU refresh.  Streaming compilation uses this to skip
        re-spilling segments that are already on disk; a present-but-corrupt
        entry still reads as ``True`` here and surfaces as a miss (and
        recompile) at :meth:`get` time."""
        return self._entry_path(key).exists()

    def get(self, key: str) -> Optional["CompiledTrace"]:
        """The cached trace for ``key``, or ``None`` (miss).

        A present-but-corrupt entry (truncated file, wrong format version,
        key mismatch, undecodable metadata) is deleted and reported as a
        miss — callers recompile, exactly as if the entry never existed.
        """
        from repro.runtime.compiled import CompiledTrace

        with obs.span(obs_names.CACHE_GET):
            entry = self._entry_path(key)
            if not entry.exists():
                self._count(obs_names.CACHE_MISSES)
                return None
            try:
                with np.load(entry, allow_pickle=False) as data:
                    meta = json.loads(str(data["meta"]))
                    if meta.get("version") != FORMAT_VERSION or meta.get("key") != key:
                        raise ValueError("format version or key mismatch")
                    blocks = np.asarray(data["blocks"], dtype=np.int64)
                    if blocks.shape[0] != int(meta["accesses"]):
                        raise ValueError("truncated block array")
                    phases: Optional[np.ndarray] = None
                    if meta["has_phases"]:
                        phases = np.asarray(data["phases"], dtype=np.uint8)
                        if phases.shape[0] != blocks.shape[0]:
                            raise ValueError("truncated phase array")
                trace = CompiledTrace(
                    label=str(meta["label"]),
                    block=int(meta["block"]),
                    blocks=blocks,
                    phases=phases,
                    firings=int(meta["firings"]),
                    fire_counts={str(k): int(v) for k, v in meta["fire_counts"].items()},
                    source_fires=int(meta["source_fires"]),
                    sink_fires=int(meta["sink_fires"]),
                )
            except Exception:  # noqa: BLE001 - any decode failure means corrupt
                self._discard(entry)
                self._count(obs_names.CACHE_CORRUPT)
                self._count(obs_names.CACHE_MISSES)
                return None
            try:  # LRU freshness: a hit makes the entry most-recently-used
                os.utime(entry)
            except OSError:  # pragma: no cover - entry raced away mid-read
                pass
            self._count(obs_names.CACHE_HITS)
            return trace

    def put(self, key: str, trace: "CompiledTrace") -> None:
        """Store ``trace`` under ``key`` atomically, then enforce the cap."""
        with obs.span(obs_names.CACHE_PUT):
            entry = self._entry_path(key)
            meta = {
                "version": FORMAT_VERSION,
                "key": key,
                "label": trace.label,
                "block": trace.block,
                "accesses": trace.accesses,
                "has_phases": trace.phases is not None,
                "firings": trace.firings,
                "fire_counts": dict(trace.fire_counts),
                "source_fires": trace.source_fires,
                "sink_fires": trace.sink_fires,
            }
            arrays: Dict[str, np.ndarray] = {
                "meta": np.asarray(json.dumps(meta)),
                "blocks": np.ascontiguousarray(trace.blocks, dtype=np.int64),
            }
            if trace.phases is not None:
                arrays["phases"] = np.ascontiguousarray(trace.phases, dtype=np.uint8)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key[:12]}.", suffix=".tmp", dir=self.path
            )
            tmp = Path(tmp_name)
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(fh, **arrays)
                os.replace(tmp, entry)  # atomic publish: readers see all or nothing
            except BaseException:
                self._discard(tmp)
                raise
            self._evict_over_cap(keep=entry)

    def _evict_over_cap(self, keep: Optional[Path] = None) -> None:
        entries = self._entries()
        sizes = {}
        for p in entries:
            try:
                sizes[p] = p.stat().st_size
            except OSError:  # pragma: no cover - raced by another process
                continue
        total = sum(sizes.values())
        if total <= self.max_bytes:
            return
        # least-recently-used first; the entry just written survives so a
        # put can never evict its own payload
        for p in sorted(sizes, key=lambda p: (p.stat().st_mtime, p.name)):
            if total <= self.max_bytes:
                break
            if keep is not None and p == keep:
                continue
            self._discard(p)
            self._count(obs_names.CACHE_EVICTIONS)
            total -= sizes[p]

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entries())

    def clear(self) -> None:
        for p in self._entries():
            self._discard(p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceCache({str(self.path)!r}, entries={len(self)}, "
            f"counters={self.counters.as_dict()})"
        )


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------
def cached_compile_trace(
    graph: "StreamGraph",
    schedule: "Schedule",
    block: int,
    capacities: Optional[Dict[int, int]] = None,
    layout_order: Optional[Iterable[str]] = None,
    count_external: bool = True,
    placement: Optional[Sequence["ObjectKey"]] = None,
    gaps: Optional[Dict["ObjectKey", int]] = None,
    cache: Optional[TraceCache] = None,
    key: Optional[str] = None,
) -> Tuple["CompiledTrace", str, bool]:
    """Compile through the cache: ``(trace, key, was_hit)``.

    With ``cache=None`` (and no configured default) this is exactly
    :func:`repro.runtime.compiled.compile_trace` plus a digest.  The
    returned trace is a fresh object either way — cached arrays are loaded
    from disk per call, so callers may remap or slice without aliasing
    other callers' results.  Callers that already digested the input (the
    batch front door groups queries by digest first) pass ``key=`` to skip
    the recompute.
    """
    from repro.runtime.compiled import compile_trace_uncached

    if layout_order is not None:
        layout_order = list(layout_order)  # consumed by digest AND compile
    if placement is not None:
        placement = list(placement)
    if cache is None:
        cache = default_cache()
    if cache is None and key is None:
        # nothing to file the trace under and nobody asked for the digest
        trace = compile_trace_uncached(
            graph, schedule, block, capacities=capacities,
            layout_order=layout_order, count_external=count_external,
            placement=placement, gaps=gaps,
        )
        return trace, "", False
    if key is None:
        key = trace_digest(
            graph, schedule, block, capacities=capacities,
            layout_order=layout_order, count_external=count_external,
            placement=placement, gaps=gaps,
        )
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached, key, True
    trace = compile_trace_uncached(
        graph, schedule, block, capacities=capacities, layout_order=layout_order,
        count_external=count_external, placement=placement, gaps=gaps,
    )
    if cache is not None:
        cache.put(key, trace)
    return trace, key, False


# ----------------------------------------------------------------------
# process-wide default (what the CLI's --cache-dir installs)
# ----------------------------------------------------------------------
_DEFAULT_CACHE: Optional[TraceCache] = None


def configure(cache: Union[TraceCache, str, Path, None]) -> Optional[TraceCache]:
    """Install (or clear, with ``None``) the process-wide default cache.

    Accepts a :class:`TraceCache` or a directory path.  Returns the
    previously configured default so callers can restore it.
    """
    global _DEFAULT_CACHE
    previous = _DEFAULT_CACHE
    if cache is None:
        _DEFAULT_CACHE = None
    elif isinstance(cache, TraceCache):
        _DEFAULT_CACHE = cache
    else:
        _DEFAULT_CACHE = TraceCache(cache)
    return previous


def default_cache() -> Optional[TraceCache]:
    """The configured process-wide cache, or ``None`` (caching disabled)."""
    return _DEFAULT_CACHE
