"""Schedule representation and cache-free feasibility validation.

Following Section 5 of the paper, a *schedule* is simply a list of module
executions ``pi = u1, u2, ..., um`` (the same module may appear many times).
Buffer capacities are a separate input: the same firing sequence may be
feasible with large cross-edge buffers and infeasible with minimal ones,
which is exactly the lever the partitioned schedulers pull.

:func:`validate_schedule` replays the token counting (no cache involved) and
reports the first violation: a firing without sufficient input tokens, or a
push overflowing a bounded buffer.  It is used as a postcondition by every
scheduler in :mod:`repro.core` and as an oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import BufferOverflowError, ScheduleError
from repro.graphs.sdf import StreamGraph

__all__ = ["Schedule", "validate_schedule"]


@dataclass
class Schedule:
    """An ordered firing sequence plus the buffer capacities it assumes.

    Attributes
    ----------
    firings:
        Module names in execution order.
    capacities:
        Channel id -> buffer capacity in tokens.  ``None`` entries (or a
        missing dict) mean "unbounded" — allowed for analysis but the
        executor requires concrete capacities.
    label:
        Human-readable provenance ("partitioned[c=3]", "naive-topological",
        ...), surfaced in experiment tables.
    """

    firings: List[str]
    capacities: Optional[Dict[int, int]] = None
    label: str = "schedule"

    def __len__(self) -> int:
        return len(self.firings)

    def __iter__(self) -> Iterator[str]:
        return iter(self.firings)

    def fire_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.firings:
            counts[f] = counts.get(f, 0) + 1
        return counts

    def count(self, name: str) -> int:
        return sum(1 for f in self.firings if f == name)

    def extended(self, more: Iterable[str]) -> "Schedule":
        return Schedule(self.firings + list(more), capacities=self.capacities, label=self.label)

    def summary(self) -> str:
        counts = self.fire_counts()
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
        tops = ", ".join(f"{n}x{c}" for n, c in top)
        return f"Schedule({self.label!r}, firings={len(self.firings)}, top=[{tops}])"


def validate_schedule(
    graph: StreamGraph,
    schedule: Schedule,
    initial_tokens: Optional[Dict[int, int]] = None,
    require_drained: bool = False,
) -> Dict[int, int]:
    """Replay token counts; raise on the first infeasible firing.

    Parameters
    ----------
    graph:
        The stream graph.  The source is assumed to draw from an infinite
        external stream (never input-blocked); the sink's outputs leave the
        system (never output-blocked) — Section 2's source/sink convention.
    schedule:
        Firing sequence and capacities under test.
    initial_tokens:
        Channel occupancies before the first firing; defaults to each
        channel's ``delay`` (its SDF initial tokens).
    require_drained:
        When True, additionally require every channel to end at its initial
        occupancy — the "complete iterations only" property that makes a
        schedule infinitely repeatable.

    Returns
    -------
    Final channel occupancies (channel id -> tokens).
    """
    tokens: Dict[int, int] = {ch.cid: ch.delay for ch in graph.channels()}
    if initial_tokens:
        for cid, t in initial_tokens.items():
            graph.channel(cid)
            if t < 0:
                raise ScheduleError(f"channel {cid}: negative initial tokens {t}")
            tokens[cid] = t
    caps = schedule.capacities or {}

    for pos, name in enumerate(schedule.firings):
        mod = graph.module(name)
        for ch in graph.in_channels(name):
            if tokens[ch.cid] < ch.in_rate:
                raise ScheduleError(
                    f"firing #{pos} of {name!r}: channel {ch.src}->{ch.dst} has "
                    f"{tokens[ch.cid]} tokens, needs {ch.in_rate}"
                )
        for ch in graph.out_channels(name):
            cap = caps.get(ch.cid)
            if cap is not None and tokens[ch.cid] + ch.out_rate > cap:
                raise BufferOverflowError(
                    f"firing #{pos} of {name!r}: channel {ch.src}->{ch.dst} at "
                    f"{tokens[ch.cid]}/{cap} cannot take {ch.out_rate} more tokens"
                )
        for ch in graph.in_channels(name):
            tokens[ch.cid] -= ch.in_rate
        for ch in graph.out_channels(name):
            tokens[ch.cid] += ch.out_rate

    if require_drained:
        init = initial_tokens or {}
        for cid, t in tokens.items():
            start = init.get(cid, graph.channel(cid).delay)
            if t != start:
                ch = graph.channel(cid)
                raise ScheduleError(
                    f"schedule does not drain channel {ch.src}->{ch.dst}: "
                    f"ends with {t}, started with {start}"
                )
    return tokens
