"""Policy-aware vectorized replay: one compiled trace, every geometry, five
replacement models.

:mod:`repro.runtime.compiled` lowers a schedule to its cache-size-independent
block trace; this module answers *whole geometry sweeps* over that trace for
each registered replacement policy (:mod:`repro.cache.policy`) without ever
simulating block-by-block:

* **Fully-associative LRU** — the classic Mattson pass: one vectorized
  stack-distance computation (:func:`repro.analysis.misscurve.stack_distances_array`)
  answers every cache size, because LRU is a stack algorithm.
* **Set-associative LRU** — LRU inside a set never sees other sets' blocks,
  so the trace is partitioned by set index (one stable argsort) and the same
  Mattson pass runs per set: an access hits a ``w``-way cache iff its
  *within-set* stack distance is at most ``w``.  One partition is shared by
  every geometry with the same set count.
* **Direct-mapped** — a degenerate per-set scan: an access hits iff the
  previous access to the same frame (``block % n_frames``) touched the same
  block, which one grouped argsort answers for the whole trace at once.
* **OPT (Belady)** — MIN is also a stack algorithm (Mattson 1970) under the
  priority "sooner next use wins".  Next-use positions are precomputed with
  the reversed argsort trick (:func:`repro.cache.opt.next_occurrences`), and
  a single priority-stack pass — truncated at the largest capacity in the
  sweep — yields per-access OPT stack distances, hence the miss count of
  *every* swept capacity in one traversal instead of one heap simulation per
  geometry.
* **Two-level hierarchy** — a sweep point is a
  :class:`~repro.cache.hierarchy.TwoLevelGeometry` (an (L1, L2) pair; each
  level any LRU organization, ``ways=1`` making it direct-mapped).  L2 is
  consulted only on L1 misses, so the L2 contents evolve exactly as an LRU
  fed the *miss sub-trace* of L1: one L1 pass (stack distances, or the
  per-frame scan when L1 is direct-mapped) selects the sub-trace, a second
  pass over it answers every L2 organization sharing that L1, and the L2
  verdicts are scattered back to trace positions.  One L1 pass therefore
  amortizes over a whole L2 capacity grid; ``workers`` fans out over
  distinct L1 geometries.

Every kernel returns per-access boolean miss masks, so phase attribution
works identically to the stepwise executor for all policies.  The stepwise
models (:class:`~repro.cache.lru.LRUCache`,
:class:`~repro.cache.direct.DirectMappedCache`,
:func:`~repro.cache.opt.simulate_opt`,
:class:`~repro.cache.hierarchy.TwoLevelCache`) remain the differential-test
oracles; ``tests/test_replay.py`` and ``tests/test_hierarchy_replay.py``
assert exact miss-for-miss agreement on random traces and geometries.

Set indexing is scheme-aware: every kernel hashes block ids to conflict
classes through the geometry's ``index_scheme`` (``"mod"`` low bits or
``"xor"`` folded tag bits — :func:`set_index_array`), and shared passes are
memoized per (class count, scheme) pair, so a sweep mixing mod- and
xor-indexed organizations still computes each pass once.  Because a block's
class is a pure function of its id under either scheme, the set-grouped
reordering argument (and therefore every kernel) carries over unchanged.

Array dtype contract (statically enforced by lint rule R4, see
``docs/STATIC_ANALYSIS.md``): block ids and stack distances are ``int64``,
per-access miss masks are ``bool``, and grouping keys may narrow to
``int16`` for the radix-sort fast path — nothing else, and always with an
explicit ``dtype=``.

The kernels see nothing but a flat ``int64`` block array: traces compiled
by :mod:`repro.runtime.compiled` under any ``placement=`` object order
(:mod:`repro.mem.placement`) — including block-remapped candidate layouts
from :func:`repro.mem.placement.remap_blocks` — replay identically, which
is what lets the placement optimizer score thousands of layouts without
recompiling.

``workers`` fans the per-geometry mask evaluation out over a thread pool
*after* the shared distance passes (numpy releases the GIL inside the heavy
ufuncs); the shared passes themselves are computed once per distinct set
count, never per geometry.  See ``docs/REPLAY.md`` for the per-policy
algorithms, their complexity, and the oracle contract.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cache.base import CacheGeometry
from repro.cache.hierarchy import TwoLevelGeometry
from repro.cache.indexing import xor_fold_index_array
from repro.cache.opt import next_occurrences
from repro.cache.policy import get_policy
from repro.errors import CacheConfigError
from repro.obs import core as obs
from repro.obs import names as obs_names

__all__ = [
    "set_index_array",
    "per_set_stack_distances",
    "opt_stack_distances",
    "hierarchy_level_masks",
    "replay_miss_masks",
    "replay_misses",
    "register_replay_kernel",
    "available_replay_policies",
]


# ----------------------------------------------------------------------
# shared distance passes
# ----------------------------------------------------------------------
def set_index_array(
    blocks: np.ndarray, sets: int, scheme: str = "mod"
) -> np.ndarray:
    """Vectorized set index of every block id under ``scheme``.

    ``"mod"`` is ``blocks % sets``; ``"xor"`` XOR-folds every tag chunk
    into the low index bits (``sets`` must be a power of two — geometry
    validation guarantees it).  This is the vectorized twin of
    :meth:`repro.cache.base.CacheGeometry.set_of`: a distinct codepath the
    differential suite diffs against the scalar fold, but both read their
    fold constants from :mod:`repro.cache.indexing`
    (:func:`~repro.cache.indexing.xor_fold_index_array`) so the twins
    cannot drift in what they fold over.
    """
    if sets <= 1:
        return np.zeros(blocks.shape[0], dtype=np.int64)
    if scheme == "mod":
        return blocks % sets
    if scheme != "xor":  # pragma: no cover - geometry validation upstream
        raise CacheConfigError(f"unknown index scheme {scheme!r}")
    return xor_fold_index_array(blocks, sets)


def _scheme_of(geom: CacheGeometry, classes: int) -> str:
    """The scheme a pass over ``classes`` conflict classes must hash with
    (normalized to ``"mod"`` when there is a single class, so geometries
    differing only in an irrelevant scheme share one pass)."""
    return "mod" if classes <= 1 else geom.index_scheme


def _stable_group_order(key: np.ndarray, n_groups: int) -> np.ndarray:
    """Stable argsort of a small-range grouping key.

    Set/frame indices are bounded by the organization (< 2^15 in any
    realistic sweep), and numpy's stable sort switches to O(n) radix for
    16-bit integers — several times faster than the int64 timsort path.
    """
    if n_groups <= np.iinfo(np.int16).max:
        key = key.astype(np.int16)
    return np.argsort(key, kind="stable")


def _set_segments(
    blocks: np.ndarray, sets: int, scheme: str = "mod"
) -> List[np.ndarray]:
    """Trace positions grouped by set index, each group time-ordered."""
    set_idx = set_index_array(blocks, sets, scheme)
    order = _stable_group_order(set_idx, sets)
    ss = set_idx[order]
    bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
    return np.split(order, bounds)


def per_set_stack_distances(
    blocks: np.ndarray, sets: int = 1, scheme: str = "mod"
) -> np.ndarray:
    """Within-set LRU stack distances; 0 marks cold accesses.

    ``sets=1`` is the fully-associative Mattson pass.  An access hits a
    ``sets``-set, ``w``-way LRU cache iff its distance here is in ``[1, w]``.

    The multi-set case needs no per-set loop: a block id determines its set
    (under either index ``scheme`` — mod or xor folding), so distinct sets
    touch disjoint block ids, and on the *set-grouped* reordering of the
    trace (each set's subsequence contiguous, time-ordered) every reuse
    window stays inside one set's span.  One global stack-distance pass
    over that reordering therefore computes every set's distances at once;
    scattering back through the grouping permutation restores trace order.
    """
    from repro.analysis.misscurve import stack_distances_array

    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    if sets <= 1 or blocks.shape[0] == 0:
        return stack_distances_array(blocks)
    set_idx = set_index_array(blocks, sets, scheme)
    order = _stable_group_order(set_idx, sets)
    d = np.empty(blocks.shape[0], dtype=np.int64)
    d[order] = stack_distances_array(blocks[order])
    return d


_OptState = Tuple[List[int], List[int], Set[int]]


def _opt_stack_pass(
    blocks: List[int],
    next_use: List[int],
    max_depth: int,
    total: Optional[int] = None,
    positions: Optional[List[int]] = None,
    state: Optional[_OptState] = None,
) -> Tuple[List[int], _OptState]:
    """Priority-stack OPT stack distances for one access sequence.

    MIN's priority list at time ``t`` orders blocks by next use after ``t``;
    every stored priority is that block's next use after its *last* access,
    which is always in the future of ``t`` (the access at that position
    would have refreshed it), so one forward pass with Mattson's percolation
    is exact.  Blocks never referenced again get unique sentinel priorities
    past the end of the trace (their relative eviction order cannot change
    any miss count).  The stack is truncated at ``max_depth``: percolation
    only ever moves entries *down*, so the top ``max_depth`` entries — and
    therefore every distance we report — are unaffected by the cut.

    Streaming extension: ``state`` resumes the pass with a prior call's
    returned ``(stack_b, stack_p, resident)``, ``total`` is the full-trace
    length that marks never-again priorities, and ``positions`` maps local
    indices to absolute trace positions so sentinels stay unique and
    monotone across chunks.  Sentinel values only need to exceed every real
    next-use and grow with time, so ``total + absolute_position`` induces
    exactly the eviction order of the monolithic ``n + i`` sentinels.
    """
    n = len(blocks)
    if total is None:
        total = n
    out = [0] * n
    if state is None:
        stack_b: List[int] = []  # block ids, top (most valuable) first
        stack_p: List[int] = []  # priorities: next-use position, smaller = sooner
        resident: Set[int] = set()
    else:
        stack_b, stack_p, resident = state
    for i in range(n):
        b = blocks[i]
        p = next_use[i]
        if p >= total:
            # unique sentinel: never used again
            p = total + (positions[i] if positions is not None else i)
        if b in resident:
            idx = stack_b.index(b)
            if idx == 0:
                out[i] = 1
                stack_p[0] = p
                continue
            out[i] = idx + 1
            carry_b, carry_p = stack_b[0], stack_p[0]
            stack_b[0], stack_p[0] = b, p
            j = 1
            while j < idx:
                if stack_p[j] >= carry_p:
                    stack_b[j], carry_b = carry_b, stack_b[j]
                    stack_p[j], carry_p = carry_p, stack_p[j]
                j += 1
            stack_b[idx], stack_p[idx] = carry_b, carry_p
        else:
            # cold (or evicted beyond every tracked capacity): miss everywhere
            if stack_b:
                carry_b, carry_p = stack_b[0], stack_p[0]
                stack_b[0], stack_p[0] = b, p
                L = len(stack_b)
                j = 1
                while j < L:
                    if stack_p[j] >= carry_p:
                        stack_b[j], carry_b = carry_b, stack_b[j]
                        stack_p[j], carry_p = carry_p, stack_p[j]
                    j += 1
                if L < max_depth:
                    stack_b.append(carry_b)
                    stack_p.append(carry_p)
                else:
                    resident.discard(carry_b)
            else:
                stack_b.append(b)
                stack_p.append(p)
            resident.add(b)
    return out, (stack_b, stack_p, resident)


def opt_stack_distances(
    blocks: np.ndarray, max_depth: int, sets: int = 1, scheme: str = "mod"
) -> np.ndarray:
    """Per-access OPT stack distances, truncated at ``max_depth``.

    0 marks accesses that miss at every capacity up to ``max_depth`` (cold,
    or reused only beyond the truncation horizon); distance ``d >= 1`` means
    the access hits any OPT cache holding at least ``d`` blocks (per set
    when ``sets > 1``, with sets hashed by ``scheme``).
    """
    if max_depth < 1:
        raise CacheConfigError(f"max_depth must be >= 1, got {max_depth}")
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = blocks.shape[0]
    out = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out
    if sets <= 1:
        dists, _ = _opt_stack_pass(
            blocks.tolist(), next_occurrences(blocks).tolist(), max_depth
        )
        out[:] = dists
        return out
    for seg in _set_segments(blocks, sets, scheme):
        sub = blocks[seg]
        dists, _ = _opt_stack_pass(
            sub.tolist(), next_occurrences(sub).tolist(), max_depth
        )
        out[seg] = dists
    return out


# ----------------------------------------------------------------------
# per-policy kernels
# ----------------------------------------------------------------------
def _fanout(
    fn: Callable, items: Sequence, workers: Optional[int]
) -> List[np.ndarray]:
    """Map ``fn`` over ``items``, through a thread pool when asked to.

    **Ordering guarantee**: the result list is always in input order —
    ``_fanout(fn, items, w)[i] == fn(items[i])`` for every ``i`` and every
    ``w``.  The serial path is a comprehension and ``ThreadPoolExecutor.map``
    yields results in submission order regardless of completion order, so
    callers (every kernel, every sweep) never re-sort.

    The pool width is clamped to ``min(workers, len(items), os.cpu_count())``
    (:func:`repro.runtime.backend.effective_workers`): a pool wider than the
    item list idles from the first task, and one wider than the machine only
    adds scheduler pressure — ``workers=64`` on a 4-core box for 3 items
    builds a 3-thread pool, not 64.  Width <= 1 runs serially.
    """
    from repro.runtime.backend import effective_workers

    width = effective_workers(workers, len(items))
    if width <= 1 or len(items) <= 1:
        return [fn(it) for it in items]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=width) as pool:
        return list(pool.map(fn, items))


def _lru_kernel(
    blocks: np.ndarray, geometries: Sequence[CacheGeometry], workers: Optional[int]
) -> List[np.ndarray]:
    distances: Dict[tuple, np.ndarray] = {}
    for geom in geometries:  # shared pass, once per distinct (sets, scheme)
        sets = 1 if geom.is_fully_associative else geom.sets
        key = (sets, _scheme_of(geom, sets))
        if key not in distances:
            distances[key] = per_set_stack_distances(blocks, *key)

    def mask(geom: CacheGeometry) -> np.ndarray:
        sets = 1 if geom.is_fully_associative else geom.sets
        ways = geom.associativity if sets > 1 else geom.n_blocks
        d = distances[(sets, _scheme_of(geom, sets))]
        return (d == 0) | (d > ways)

    return _fanout(mask, list(geometries), workers)


def _direct_hit_mask(
    blocks: np.ndarray, frames: int, scheme: str = "mod"
) -> np.ndarray:
    """Per-access hit mask of a direct-mapped cache with ``frames`` frames.

    Per-frame last-block scan: group accesses by frame (the ``scheme``'s
    hash of the block id; stable argsort keeps them time-ordered), hit iff
    the previous access to the same frame touched the same block.
    """
    n = blocks.shape[0]
    hit_mask = np.zeros(n, dtype=bool)
    if n == 0:
        return hit_mask
    key = set_index_array(blocks, frames, scheme)
    order = _stable_group_order(key, frames)
    sk, sb = key[order], blocks[order]
    same = (sk[1:] == sk[:-1]) & (sb[1:] == sb[:-1])
    hit_mask[order[1:][same]] = True
    return hit_mask


def _direct_kernel(
    blocks: np.ndarray, geometries: Sequence[CacheGeometry], workers: Optional[int]
) -> List[np.ndarray]:
    hits: Dict[tuple, np.ndarray] = {}
    for geom in geometries:
        if geom.ways not in (None, 1):
            raise CacheConfigError(
                f"direct-mapped replay needs ways=1 (or an unspecified "
                f"associativity), got ways={geom.ways}"
            )
        key = (geom.n_blocks, _scheme_of(geom, geom.n_blocks))
        if key not in hits:
            hits[key] = _direct_hit_mask(blocks, *key)

    def mask(geom: CacheGeometry) -> np.ndarray:
        return ~hits[(geom.n_blocks, _scheme_of(geom, geom.n_blocks))]

    return _fanout(mask, list(geometries), workers)


def _opt_kernel(
    blocks: np.ndarray, geometries: Sequence[CacheGeometry], workers: Optional[int]
) -> List[np.ndarray]:
    # one truncated priority-stack pass per distinct (set count, scheme),
    # deep enough for the largest capacity sharing that pass
    depth_for: Dict[tuple, int] = {}
    for geom in geometries:
        sets = 1 if geom.is_fully_associative else geom.sets
        cap = geom.n_blocks if sets == 1 else geom.associativity
        key = (sets, _scheme_of(geom, sets))
        depth_for[key] = max(depth_for.get(key, 1), cap)
    distances = {
        key: opt_stack_distances(blocks, depth, sets=key[0], scheme=key[1])
        for key, depth in depth_for.items()
    }

    def mask(geom: CacheGeometry) -> np.ndarray:
        sets = 1 if geom.is_fully_associative else geom.sets
        cap = geom.n_blocks if sets == 1 else geom.associativity
        d = distances[(sets, _scheme_of(geom, sets))]
        return (d == 0) | (d > cap)

    return _fanout(mask, list(geometries), workers)


def _lru_level_mask(
    blocks: np.ndarray, geom: CacheGeometry, shared: Dict
) -> np.ndarray:
    """Single-level miss mask of one LRU organization, with memoized passes.

    ``ways=1`` takes the per-frame scan (:func:`_direct_hit_mask`); every
    other organization reads off the per-set stack distances.  ``shared``
    memoizes both pass kinds by their organization key, so all geometries
    sharing a set count (or frame count) reuse one pass — this is the
    hierarchy kernel's amortization unit for both levels.
    """
    if geom.ways == 1:
        scheme = _scheme_of(geom, geom.n_blocks)
        key = ("direct", geom.n_blocks, scheme)
        hit = shared.get(key)
        if hit is None:
            hit = shared[key] = _direct_hit_mask(blocks, geom.n_blocks, scheme)
        return ~hit
    sets = 1 if geom.is_fully_associative else geom.sets
    scheme = _scheme_of(geom, sets)
    key = ("lru", sets, scheme)
    d = shared.get(key)
    if d is None:
        d = shared[key] = per_set_stack_distances(blocks, sets, scheme)
    ways = geom.associativity if sets > 1 else geom.n_blocks
    return (d == 0) | (d > ways)


def _two_level_kernel(
    blocks: np.ndarray, geometries: Sequence, workers: Optional[int]
) -> List[np.ndarray]:
    """Memory-miss masks of two-level hierarchies, one L1 pass per distinct L1.

    The stepwise :class:`~repro.cache.hierarchy.TwoLevelCache` consults L2
    exactly when L1 misses, so L2's contents evolve as an LRU cache fed the
    L1 *miss sub-trace* — which depends only on the L1 geometry.  The kernel
    therefore groups sweep points by L1, computes each L1 mask once, replays
    every L2 organization of the group over the (much shorter) sub-trace,
    and scatters the L2 verdicts back to trace positions.  ``workers``
    threads the per-L1 groups.
    """
    for tg in geometries:
        if not isinstance(tg, TwoLevelGeometry):
            raise CacheConfigError(
                f"policy 'two_level' sweeps TwoLevelGeometry points, "
                f"got {tg!r}"
            )
    n = blocks.shape[0]
    groups: Dict[CacheGeometry, List[int]] = {}
    for i, tg in enumerate(geometries):
        groups.setdefault(tg.l1, []).append(i)
    l1_shared: Dict = {}  # L1 passes shared even across distinct L1 geometries

    def run_group(item: Tuple[CacheGeometry, List[int]]) -> List:
        l1, idxs = item
        l1_mask = _lru_level_mask(blocks, l1, l1_shared)
        pos = np.flatnonzero(l1_mask)
        sub = blocks[pos]
        l2_shared: Dict = {}
        results = []
        for i in idxs:
            l2_miss_sub = _lru_level_mask(sub, geometries[i].l2, l2_shared)
            full = np.zeros(n, dtype=bool)
            full[pos[l2_miss_sub]] = True  # memory miss = L1 miss AND L2 miss
            results.append((i, full))
        return results

    out: List[Optional[np.ndarray]] = [None] * len(geometries)
    for group_results in _fanout(run_group, list(groups.items()), workers):
        for i, mask in group_results:
            out[i] = mask
    return out


def hierarchy_level_masks(
    blocks: np.ndarray, geometry: TwoLevelGeometry
) -> tuple:
    """Per-access ``(l1_miss_mask, memory_miss_mask)`` of one hierarchy.

    The first mask marks L1 misses (= L2 consults), the second the subset
    that also missed L2 (= memory transfers, what ``policy="two_level"``
    counts).  Experiment A8 reads the inclusion filter rate straight off
    these two masks.
    """
    arr = np.ascontiguousarray(blocks, dtype=np.int64)
    l1_mask = _lru_level_mask(arr, geometry.l1, {})
    (mem_mask,) = _two_level_kernel(arr, [geometry], None)
    return l1_mask, mem_mask


_KERNELS: Dict[str, Callable] = {}


def register_replay_kernel(policy: str, kernel: Callable) -> None:
    """Register the vectorized kernel answering sweeps for ``policy``.

    The name must already exist in the stepwise registry
    (:func:`repro.cache.policy.get_policy`) — a replay without an oracle is
    untestable by construction.
    """
    get_policy(policy)
    _KERNELS[policy] = kernel


def available_replay_policies() -> tuple:
    return tuple(sorted(_KERNELS))


register_replay_kernel("lru", _lru_kernel)
register_replay_kernel("direct", _direct_kernel)
register_replay_kernel("opt", _opt_kernel)
register_replay_kernel("two_level", _two_level_kernel)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def replay_miss_masks(
    blocks: np.ndarray,
    geometries: Iterable[CacheGeometry],
    policy: str = "lru",
    workers: Optional[int] = None,
) -> List[np.ndarray]:
    """Per-access boolean miss masks of ``policy`` for every geometry.

    All shared work (stack distances, set partitions, next-use passes) is
    computed once per distinct organization and reused across the sweep;
    ``workers`` threads the final per-geometry mask evaluation.
    """
    geoms = list(geometries)
    get_policy(policy)  # raises CacheConfigError for unknown names
    kernel = _KERNELS.get(policy)
    if kernel is None:
        raise CacheConfigError(
            f"policy {policy!r} has no vectorized replay kernel; "
            f"available: {sorted(_KERNELS)}"
        )
    arr = np.ascontiguousarray(blocks, dtype=np.int64)
    # the geometry tally is chunk-sum invariant: a process backend's
    # workers each count their chunk and the merged total equals one
    # serial call's — tests/test_obs.py pins that equality
    obs.add(obs_names.REPLAY_GEOMETRIES, len(geoms))
    with obs.span(obs_names.REPLAY, policy=policy):
        return kernel(arr, geoms, workers)


def replay_misses(
    blocks: np.ndarray,
    geometries: Iterable[CacheGeometry],
    policy: str = "lru",
    workers: Optional[int] = None,
) -> List[int]:
    """Total miss counts of ``policy`` for every geometry (sweep form)."""
    return [
        int(np.count_nonzero(m))
        for m in replay_miss_masks(blocks, geometries, policy=policy, workers=workers)
    ]
