"""Policy-aware vectorized replay: one compiled trace, every geometry, four
replacement models.

:mod:`repro.runtime.compiled` lowers a schedule to its cache-size-independent
block trace; this module answers *whole geometry sweeps* over that trace for
each registered replacement policy (:mod:`repro.cache.policy`) without ever
simulating block-by-block:

* **Fully-associative LRU** — the classic Mattson pass: one vectorized
  stack-distance computation (:func:`repro.analysis.misscurve.stack_distances_array`)
  answers every cache size, because LRU is a stack algorithm.
* **Set-associative LRU** — LRU inside a set never sees other sets' blocks,
  so the trace is partitioned by set index (one stable argsort) and the same
  Mattson pass runs per set: an access hits a ``w``-way cache iff its
  *within-set* stack distance is at most ``w``.  One partition is shared by
  every geometry with the same set count.
* **Direct-mapped** — a degenerate per-set scan: an access hits iff the
  previous access to the same frame (``block % n_frames``) touched the same
  block, which one grouped argsort answers for the whole trace at once.
* **OPT (Belady)** — MIN is also a stack algorithm (Mattson 1970) under the
  priority "sooner next use wins".  Next-use positions are precomputed with
  the reversed argsort trick (:func:`repro.cache.opt.next_occurrences`), and
  a single priority-stack pass — truncated at the largest capacity in the
  sweep — yields per-access OPT stack distances, hence the miss count of
  *every* swept capacity in one traversal instead of one heap simulation per
  geometry.

Every kernel returns per-access boolean miss masks, so phase attribution
works identically to the stepwise executor for all policies.  The stepwise
models (:class:`~repro.cache.lru.LRUCache`,
:class:`~repro.cache.direct.DirectMappedCache`,
:func:`~repro.cache.opt.simulate_opt`) remain the differential-test oracles;
``tests/test_replay.py`` asserts exact miss-for-miss agreement on random
traces and geometries.

``workers`` fans the per-geometry mask evaluation out over a thread pool
*after* the shared distance passes (numpy releases the GIL inside the heavy
ufuncs); the shared passes themselves are computed once per distinct set
count, never per geometry.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.cache.base import CacheGeometry
from repro.cache.opt import next_occurrences
from repro.cache.policy import get_policy
from repro.errors import CacheConfigError

__all__ = [
    "per_set_stack_distances",
    "opt_stack_distances",
    "replay_miss_masks",
    "replay_misses",
    "register_replay_kernel",
    "available_replay_policies",
]


# ----------------------------------------------------------------------
# shared distance passes
# ----------------------------------------------------------------------
def _stable_group_order(key: np.ndarray, n_groups: int) -> np.ndarray:
    """Stable argsort of a small-range grouping key.

    Set/frame indices are bounded by the organization (< 2^15 in any
    realistic sweep), and numpy's stable sort switches to O(n) radix for
    16-bit integers — several times faster than the int64 timsort path.
    """
    if n_groups <= np.iinfo(np.int16).max:
        key = key.astype(np.int16)
    return np.argsort(key, kind="stable")


def _set_segments(blocks: np.ndarray, sets: int) -> List[np.ndarray]:
    """Trace positions grouped by set index, each group time-ordered."""
    set_idx = blocks % sets
    order = _stable_group_order(set_idx, sets)
    ss = set_idx[order]
    bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
    return np.split(order, bounds)


def per_set_stack_distances(blocks: np.ndarray, sets: int = 1) -> np.ndarray:
    """Within-set LRU stack distances; 0 marks cold accesses.

    ``sets=1`` is the fully-associative Mattson pass.  An access hits a
    ``sets``-set, ``w``-way LRU cache iff its distance here is in ``[1, w]``.

    The multi-set case needs no per-set loop: a block id determines its set,
    so distinct sets touch disjoint block ids, and on the *set-grouped*
    reordering of the trace (each set's subsequence contiguous,
    time-ordered) every reuse window stays inside one set's span.  One
    global stack-distance pass over that reordering therefore computes every
    set's distances at once; scattering back through the grouping
    permutation restores trace order.
    """
    from repro.analysis.misscurve import stack_distances_array

    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    if sets <= 1 or blocks.shape[0] == 0:
        return stack_distances_array(blocks)
    set_idx = blocks % sets
    order = _stable_group_order(set_idx, sets)
    d = np.empty(blocks.shape[0], dtype=np.int64)
    d[order] = stack_distances_array(blocks[order])
    return d


def _opt_stack_pass(
    blocks: List[int], next_use: List[int], max_depth: int
) -> List[int]:
    """Priority-stack OPT stack distances for one access sequence.

    MIN's priority list at time ``t`` orders blocks by next use after ``t``;
    every stored priority is that block's next use after its *last* access,
    which is always in the future of ``t`` (the access at that position
    would have refreshed it), so one forward pass with Mattson's percolation
    is exact.  Blocks never referenced again get unique sentinel priorities
    past the end of the trace (their relative eviction order cannot change
    any miss count).  The stack is truncated at ``max_depth``: percolation
    only ever moves entries *down*, so the top ``max_depth`` entries — and
    therefore every distance we report — are unaffected by the cut.
    """
    n = len(blocks)
    out = [0] * n
    stack_b: List[int] = []  # block ids, top (most valuable) first
    stack_p: List[int] = []  # priorities: next-use position, smaller = sooner
    resident = set()
    for i in range(n):
        b = blocks[i]
        p = next_use[i]
        if p >= n:
            p = n + i  # unique sentinel: never used again
        if b in resident:
            idx = stack_b.index(b)
            if idx == 0:
                out[i] = 1
                stack_p[0] = p
                continue
            out[i] = idx + 1
            carry_b, carry_p = stack_b[0], stack_p[0]
            stack_b[0], stack_p[0] = b, p
            j = 1
            while j < idx:
                if stack_p[j] >= carry_p:
                    stack_b[j], carry_b = carry_b, stack_b[j]
                    stack_p[j], carry_p = carry_p, stack_p[j]
                j += 1
            stack_b[idx], stack_p[idx] = carry_b, carry_p
        else:
            # cold (or evicted beyond every tracked capacity): miss everywhere
            if stack_b:
                carry_b, carry_p = stack_b[0], stack_p[0]
                stack_b[0], stack_p[0] = b, p
                L = len(stack_b)
                j = 1
                while j < L:
                    if stack_p[j] >= carry_p:
                        stack_b[j], carry_b = carry_b, stack_b[j]
                        stack_p[j], carry_p = carry_p, stack_p[j]
                    j += 1
                if L < max_depth:
                    stack_b.append(carry_b)
                    stack_p.append(carry_p)
                else:
                    resident.discard(carry_b)
            else:
                stack_b.append(b)
                stack_p.append(p)
            resident.add(b)
    return out


def opt_stack_distances(
    blocks: np.ndarray, max_depth: int, sets: int = 1
) -> np.ndarray:
    """Per-access OPT stack distances, truncated at ``max_depth``.

    0 marks accesses that miss at every capacity up to ``max_depth`` (cold,
    or reused only beyond the truncation horizon); distance ``d >= 1`` means
    the access hits any OPT cache holding at least ``d`` blocks (per set
    when ``sets > 1``).
    """
    if max_depth < 1:
        raise CacheConfigError(f"max_depth must be >= 1, got {max_depth}")
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = blocks.shape[0]
    out = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out
    if sets <= 1:
        out[:] = _opt_stack_pass(
            blocks.tolist(), next_occurrences(blocks).tolist(), max_depth
        )
        return out
    for seg in _set_segments(blocks, sets):
        sub = blocks[seg]
        out[seg] = _opt_stack_pass(
            sub.tolist(), next_occurrences(sub).tolist(), max_depth
        )
    return out


# ----------------------------------------------------------------------
# per-policy kernels
# ----------------------------------------------------------------------
def _fanout(
    fn: Callable, items: Sequence, workers: Optional[int]
) -> List[np.ndarray]:
    """Map ``fn`` over ``items``, through a thread pool when asked to."""
    if not workers or workers <= 1 or len(items) <= 1:
        return [fn(it) for it in items]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def _lru_kernel(
    blocks: np.ndarray, geometries: Sequence[CacheGeometry], workers: Optional[int]
) -> List[np.ndarray]:
    distances: Dict[int, np.ndarray] = {}
    for geom in geometries:  # shared pass, once per distinct set count
        sets = 1 if geom.is_fully_associative else geom.sets
        if sets not in distances:
            distances[sets] = per_set_stack_distances(blocks, sets)

    def mask(geom: CacheGeometry) -> np.ndarray:
        sets = 1 if geom.is_fully_associative else geom.sets
        ways = geom.associativity if sets > 1 else geom.n_blocks
        d = distances[sets]
        return (d == 0) | (d > ways)

    return _fanout(mask, list(geometries), workers)


def _direct_kernel(
    blocks: np.ndarray, geometries: Sequence[CacheGeometry], workers: Optional[int]
) -> List[np.ndarray]:
    n = blocks.shape[0]
    hits: Dict[int, np.ndarray] = {}
    for geom in geometries:
        if geom.ways not in (None, 1):
            raise CacheConfigError(
                f"direct-mapped replay needs ways=1 (or an unspecified "
                f"associativity), got ways={geom.ways}"
            )
        frames = geom.n_blocks
        if frames in hits or n == 0:
            continue
        # per-frame last-block scan: group accesses by frame (stable argsort
        # keeps them time-ordered), hit iff the previous access to the same
        # frame touched the same block
        key = blocks % frames
        order = _stable_group_order(key, frames)
        sk, sb = key[order], blocks[order]
        hit_mask = np.zeros(n, dtype=bool)
        same = (sk[1:] == sk[:-1]) & (sb[1:] == sb[:-1])
        hit_mask[order[1:][same]] = True
        hits[frames] = hit_mask

    def mask(geom: CacheGeometry) -> np.ndarray:
        if n == 0:
            return np.zeros(0, dtype=bool)
        return ~hits[geom.n_blocks]

    return _fanout(mask, list(geometries), workers)


def _opt_kernel(
    blocks: np.ndarray, geometries: Sequence[CacheGeometry], workers: Optional[int]
) -> List[np.ndarray]:
    # one truncated priority-stack pass per distinct set count, deep enough
    # for the largest capacity sharing that count
    depth_for: Dict[int, int] = {}
    for geom in geometries:
        sets = 1 if geom.is_fully_associative else geom.sets
        cap = geom.n_blocks if sets == 1 else geom.associativity
        depth_for[sets] = max(depth_for.get(sets, 1), cap)
    distances = {
        sets: opt_stack_distances(blocks, depth, sets=sets)
        for sets, depth in depth_for.items()
    }

    def mask(geom: CacheGeometry) -> np.ndarray:
        sets = 1 if geom.is_fully_associative else geom.sets
        cap = geom.n_blocks if sets == 1 else geom.associativity
        d = distances[sets]
        return (d == 0) | (d > cap)

    return _fanout(mask, list(geometries), workers)


_KERNELS: Dict[str, Callable] = {}


def register_replay_kernel(policy: str, kernel: Callable) -> None:
    """Register the vectorized kernel answering sweeps for ``policy``.

    The name must already exist in the stepwise registry
    (:func:`repro.cache.policy.get_policy`) — a replay without an oracle is
    untestable by construction.
    """
    get_policy(policy)
    _KERNELS[policy] = kernel


def available_replay_policies() -> tuple:
    return tuple(sorted(_KERNELS))


register_replay_kernel("lru", _lru_kernel)
register_replay_kernel("direct", _direct_kernel)
register_replay_kernel("opt", _opt_kernel)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def replay_miss_masks(
    blocks: np.ndarray,
    geometries: Iterable[CacheGeometry],
    policy: str = "lru",
    workers: Optional[int] = None,
) -> List[np.ndarray]:
    """Per-access boolean miss masks of ``policy`` for every geometry.

    All shared work (stack distances, set partitions, next-use passes) is
    computed once per distinct organization and reused across the sweep;
    ``workers`` threads the final per-geometry mask evaluation.
    """
    geoms = list(geometries)
    get_policy(policy)  # raises CacheConfigError for unknown names
    kernel = _KERNELS.get(policy)
    if kernel is None:
        raise CacheConfigError(
            f"policy {policy!r} has no vectorized replay kernel; "
            f"available: {sorted(_KERNELS)}"
        )
    arr = np.ascontiguousarray(blocks, dtype=np.int64)
    return kernel(arr, geoms, workers)


def replay_misses(
    blocks: np.ndarray,
    geometries: Iterable[CacheGeometry],
    policy: str = "lru",
    workers: Optional[int] = None,
) -> List[int]:
    """Total miss counts of ``policy`` for every geometry (sweep form)."""
    return [
        int(np.count_nonzero(m))
        for m in replay_miss_masks(blocks, geometries, policy=policy, workers=workers)
    ]
