"""Trace compilation: schedules -> flat block traces -> every geometry at once.

The :class:`~repro.runtime.executor.Executor` simulates one (schedule,
cache geometry) pair at a time, paying an OrderedDict operation per block
touch.  But the *block trace* a schedule generates does not depend on the
cache size at all — only on the memory layout (hence the block size ``B``)
— and fully-associative LRU is a stack algorithm, so one trace answers
every cache size in a single Mattson stack-distance pass
(:mod:`repro.analysis.misscurve`).  This module exploits both facts:

* :class:`TraceCompiler` compiles a schedule (flat
  :class:`~repro.runtime.schedule.Schedule` or lazy
  :class:`~repro.runtime.looped.LoopedSchedule`) against the same
  :class:`~repro.mem.layout.MemoryLayout` the executor would build, into a
  flat numpy array of block ids.  Each module's per-firing touch list is
  precomputed: its state blocks are a fixed array, and every circular-buffer
  window's block expansion is memoized by its address ranges (a buffer of
  capacity ``c`` only ever exposes ``c`` distinct windows per rate), so the
  per-firing work is a few dict lookups and array appends instead of
  per-block simulation.
* :func:`simulate_trace` answers a whole family of cache geometries from
  one compiled trace, for any replacement policy registered in
  :mod:`repro.cache.policy`, by dispatching to the vectorized replay
  kernels of :mod:`repro.runtime.replay`: fully-associative LRU (one
  Mattson stack-distance pass), set-associative LRU (per-set stack
  distances on the set-grouped trace), direct-mapped (per-frame last-block
  scan), OPT/Belady (a truncated priority-stack pass answering every swept
  capacity at once), and two-level hierarchies (``policy="two_level"``
  with :class:`~repro.cache.hierarchy.TwoLevelGeometry` sweep points: an
  L1 pass emits the miss sub-trace a second L2 pass replays).  Results are
  :class:`~repro.runtime.executor.ExecutionResult` rows identical — misses,
  accesses, and per-phase attribution — to running the stepwise engine per
  geometry.  ``workers=`` fans the per-geometry evaluation out over a
  thread pool after the shared distance passes.
* :func:`measure_compiled` is the drop-in replacement for
  ``Executor.measure`` on any replay-capable policy.

Array dtype contract (statically enforced by lint rule R4, see
``docs/STATIC_ANALYSIS.md``): block-id arrays are ``int64`` (the replay
kernels' input type), per-access phase codes are ``uint8`` (three codes),
and any per-access flag masks are ``bool``.  Every array constructor in
this module passes its dtype explicitly so a refactor cannot silently
change what the kernels replay.

Which path is vectorized, which is reference: the compiled replay above is
the production path for every geometry sweep — every registered policy has
a replay kernel; the stepwise engines — the
:class:`~repro.runtime.executor.Executor` driving a
:class:`~repro.cache.lru.LRUCache` / :class:`~repro.cache.direct.DirectMappedCache`
/ :class:`~repro.cache.hierarchy.TwoLevelCache`, and the heap-based
:func:`~repro.cache.opt.simulate_opt` — remain the differential-test
oracles.  :func:`repro.testing.oracles.assert_trace_equivalent` checks
executor and compiler agree block-for-block, and ``tests/test_replay.py``
plus ``tests/test_hierarchy_replay.py`` diff every replay kernel against
its stepwise oracle on random traces.  The data flow — schedule to trace
to sweep — is drawn end to end in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    overload,
)

import numpy as np

from repro.cache.base import CacheGeometry
from repro.errors import CacheConfigError
from repro.graphs.sdf import Channel, StreamGraph
from repro.obs import core as obs
from repro.obs import names as obs_names
from repro.mem.layout import ObjectKey
from repro.runtime.buffers import ChannelBuffer
from repro.runtime.executor import (
    ExecutionResult,
    build_memory_plan,
    require_input_tokens,
    require_output_space,
    sink_stream_words,
    source_stream_words,
)
from repro.runtime.schedule import Schedule

if TYPE_CHECKING:  # runtime import would cycle: streaming builds on this module
    from repro.runtime.streaming import ChunkedTrace

__all__ = [
    "CompiledTrace",
    "TraceCompiler",
    "compile_trace",
    "compile_trace_uncached",
    "simulate_trace",
    "measure_compiled",
]

#: Phase codes stored per block touch; index into ``PHASE_NAMES`` (0 = none).
PHASE_NAMES = ("", "state", "data", "stream")
_STATE, _DATA, _STREAM = 1, 2, 3


@dataclass
class CompiledTrace:
    """A schedule lowered to its cache-size-independent block trace.

    ``blocks[i]`` is the i-th block id touched (exactly the sequence a
    :class:`~repro.mem.trace.TracingCache` would record from the executor);
    ``phases[i]`` attributes the touch to state/data/stream.  ``phases`` may
    be ``None`` for traces recorded without attribution.
    """

    label: str
    block: int
    blocks: np.ndarray
    phases: Optional[np.ndarray] = None
    firings: int = 0
    fire_counts: Dict[str, int] = field(default_factory=dict)
    source_fires: int = 0
    sink_fires: int = 0

    @property
    def accesses(self) -> int:
        return int(self.blocks.shape[0])

    def distinct_blocks(self) -> int:
        """Compulsory-miss floor of the trace."""
        return int(np.unique(self.blocks).shape[0])

    def __len__(self) -> int:
        return self.accesses


class _ChannelPlan:
    """A real :class:`~repro.runtime.buffers.ChannelBuffer` plus a memoized
    range→block-id expansion.

    The buffer owns all circular-FIFO semantics (the same object the
    executor uses), so the compiled trace cannot drift from the stepwise
    path; compilation only adds a cache from the buffer's returned address
    ranges to the block-id array they span.  A buffer of capacity ``c``
    exposes at most ``c`` distinct windows per direction, so the cache
    stays small and hits on every steady-state firing.
    """

    __slots__ = ("buf", "src", "dst", "in_rate", "out_rate", "_block", "_cache")

    def __init__(self, ch: Channel, buf: ChannelBuffer, block: int) -> None:
        self.buf = buf
        self.src = ch.src
        self.dst = ch.dst
        self.in_rate = ch.in_rate
        self.out_rate = ch.out_rate
        self._block = block
        self._cache: Dict[tuple, np.ndarray] = {}

    def _blocks(self, ranges: Iterable[Tuple[int, int]]) -> np.ndarray:
        key = tuple(ranges)
        arr = self._cache.get(key)
        if arr is None:
            B = self._block
            ids: List[int] = []
            for start, length in ranges:
                ids.extend(range(start // B, (start + length - 1) // B + 1))
            arr = self._cache[key] = np.asarray(ids, dtype=np.int64)
        return arr

    def pop_blocks(self) -> np.ndarray:
        return self._blocks(self.buf.pop_ranges(self.in_rate))

    def push_blocks(self) -> np.ndarray:
        return self._blocks(self.buf.push_ranges(self.out_rate))


class _ModulePlan:
    """Precomputed per-firing touch template for one module."""

    __slots__ = ("name", "state_blocks", "ins", "outs", "in_words", "out_words")

    def __init__(self, name: str) -> None:
        self.name = name
        self.state_blocks: Optional[np.ndarray] = None
        self.ins: List[_ChannelPlan] = []
        self.outs: List[_ChannelPlan] = []
        self.in_words = 0   # external input words per firing (sources)
        self.out_words = 0  # external output words per firing (sinks)


class TraceCompiler:
    """Compiles schedules for one (graph, block size, capacities, layout).

    Shares the executor's memory setup
    (:func:`~repro.runtime.executor.build_memory_plan`) and its actual
    :class:`~repro.runtime.buffers.ChannelBuffer` objects, so the compiled
    trace is bit-identical to what a tracing cache would record.  The cache
    *size* is deliberately absent: one compiled trace serves every size via
    :func:`simulate_trace`.
    """

    def __init__(
        self,
        graph: StreamGraph,
        block: int,
        capacities: Optional[Dict[int, int]] = None,
        layout_order: Optional[Iterable[str]] = None,
        count_external: bool = True,
        placement: Optional[Sequence[ObjectKey]] = None,
        gaps: Optional[Dict[ObjectKey, int]] = None,
    ) -> None:
        self.graph = graph
        self.block = block
        caps, self.layout, self._ext_in_base, self._ext_out_base = build_memory_plan(
            graph, block, capacities=capacities, layout_order=layout_order,
            placement=placement, gaps=gaps,
        )
        self.capacities = caps
        self.count_external = count_external

        buffers = {
            cid: ChannelBuffer(cid, self.layout.buffer_region(cid)) for cid in caps
        }
        for ch in graph.channels():
            if ch.delay:
                buffers[ch.cid].prefill(ch.delay)
        plans_by_cid = {
            cid: _ChannelPlan(graph.channel(cid), buf, block)
            for cid, buf in buffers.items()
        }
        source_set = set(graph.sources())
        sink_set = set(graph.sinks())
        self._plans: Dict[str, _ModulePlan] = {}
        for mod in graph.modules():
            plan = _ModulePlan(mod.name)
            region = self.layout.state_region(mod.name)
            if region.length:
                spanned = range(region.start // block, (region.end - 1) // block + 1)
                plan.state_blocks = np.asarray(spanned, dtype=np.int64)
            plan.ins = [plans_by_cid[ch.cid] for ch in graph.in_channels(mod.name)]
            plan.outs = [plans_by_cid[ch.cid] for ch in graph.out_channels(mod.name)]
            if mod.name in source_set:
                plan.in_words = source_stream_words(graph, mod.name)
            if mod.name in sink_set:
                plan.out_words = sink_stream_words(graph, mod.name)
            self._plans[mod.name] = plan
        self._buffers = buffers
        # metadata of the most recent :meth:`compile_chunks` run; complete
        # once that generator is exhausted (:meth:`compile` reads them)
        self.last_label: str = "schedule"
        self.last_firings: int = 0
        self.last_fire_counts: Dict[str, int] = {}
        self.last_source_fires: int = 0
        self.last_sink_fires: int = 0
        self.last_accesses: int = 0

    def compile_chunks(
        self, schedule: Schedule, chunk_words: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Compile ``schedule`` as a stream of ``(blocks, phases)`` chunks.

        With ``chunk_words=None`` the whole trace is yielded as one final
        chunk (the monolithic case); otherwise every yielded chunk holds
        exactly ``chunk_words`` accesses except the last, which carries the
        remainder (an empty schedule yields no chunks).  Concatenating the
        chunks in order reproduces :meth:`compile`'s arrays bit for bit —
        the contract the streaming engine (:mod:`repro.runtime.streaming`)
        is differentially pinned on.  Peak memory while chunking is bounded
        by ``chunk_words`` plus one firing's touches, never the trace
        length.

        Validates feasibility exactly like ``Executor.fire`` and raises
        :class:`~repro.errors.ScheduleError` on the first violation.  The
        compiler mutates its buffer states, so each call continues where
        the previous one stopped — build a fresh compiler per run.  Trace
        metadata (label, firings, per-module fire counts, source/sink
        fires, total accesses) is complete once the generator is exhausted
        and is then readable from ``last_label``/``last_firings``/
        ``last_fire_counts``/``last_source_fires``/``last_sink_fires``/
        ``last_accesses``.
        """
        if chunk_words is not None and chunk_words < 1:
            raise CacheConfigError(
                f"chunk_words must be >= 1, got {chunk_words}"
            )
        plans = self._plans
        block = self.block
        count_external = self.count_external
        carry_blocks = np.zeros(0, dtype=np.int64)
        carry_phases = np.zeros(0, dtype=np.uint8)
        chunks: List[np.ndarray] = []
        codes: List[int] = []
        lens: List[int] = []
        pending = 0
        fire_counts: Dict[str, int] = {}
        firings = 0
        source_fires = 0
        sink_fires = 0
        accesses = 0
        ext_in_pos = 0
        ext_out_pos = 0
        self.last_label = getattr(schedule, "label", "schedule")

        it = (
            schedule.firings_iter()
            if hasattr(schedule, "firings_iter")
            else schedule.firings
        )
        for name in it:
            try:
                plan = plans[name]
            except KeyError:
                self.graph.module(name)  # raises GraphError with the usual message
                raise
            for cs in plan.ins:
                require_input_tokens(name, cs.src, cs.dst, cs.buf.tokens, cs.in_rate)
            for cs in plan.outs:
                require_output_space(name, cs.src, cs.dst, cs.buf.free, cs.out_rate)

            if plan.state_blocks is not None:
                chunks.append(plan.state_blocks)
                codes.append(_STATE)
                lens.append(plan.state_blocks.shape[0])
                pending += plan.state_blocks.shape[0]
            for cs in plan.ins:
                arr = cs.pop_blocks()
                chunks.append(arr)
                codes.append(_DATA)
                lens.append(arr.shape[0])
                pending += arr.shape[0]
            for cs in plan.outs:
                arr = cs.push_blocks()
                chunks.append(arr)
                codes.append(_DATA)
                lens.append(arr.shape[0])
                pending += arr.shape[0]
            if count_external:
                if plan.in_words:
                    start = self._ext_in_base + ext_in_pos
                    lo, hi = start // block, (start + plan.in_words - 1) // block
                    chunks.append(np.arange(lo, hi + 1, dtype=np.int64))
                    codes.append(_STREAM)
                    lens.append(hi - lo + 1)
                    pending += hi - lo + 1
                    ext_in_pos += plan.in_words
                if plan.out_words:
                    start = self._ext_out_base + ext_out_pos
                    lo, hi = start // block, (start + plan.out_words - 1) // block
                    chunks.append(np.arange(lo, hi + 1, dtype=np.int64))
                    codes.append(_STREAM)
                    lens.append(hi - lo + 1)
                    pending += hi - lo + 1
                    ext_out_pos += plan.out_words

            fire_counts[name] = fire_counts.get(name, 0) + 1
            firings += 1
            if plan.in_words:
                source_fires += 1
            if plan.out_words:
                sink_fires += 1

            if chunk_words is not None and pending >= chunk_words:
                blocks = np.concatenate([carry_blocks] + chunks)
                phases = np.concatenate([
                    carry_phases,
                    np.repeat(
                        np.asarray(codes, dtype=np.uint8),
                        np.asarray(lens, dtype=np.int64),
                    ),
                ])
                emitted = 0
                while blocks.shape[0] - emitted >= chunk_words:
                    yield (
                        blocks[emitted:emitted + chunk_words],
                        phases[emitted:emitted + chunk_words],
                    )
                    accesses += chunk_words
                    emitted += chunk_words
                # copies release the concatenated buffer once consumers drop
                # their chunk views, keeping the high-water mark at
                # O(chunk_words), not O(flushes)
                carry_blocks = blocks[emitted:].copy()
                carry_phases = phases[emitted:].copy()
                chunks, codes, lens = [], [], []
                pending = carry_blocks.shape[0]

        blocks = (
            np.concatenate([carry_blocks] + chunks)
            if (carry_blocks.shape[0] or chunks)
            else np.zeros(0, dtype=np.int64)
        )
        phases = np.concatenate([
            carry_phases,
            np.repeat(
                np.asarray(codes, dtype=np.uint8),
                np.asarray(lens, dtype=np.int64),
            ),
        ])
        self.last_firings = firings
        self.last_fire_counts = fire_counts
        self.last_source_fires = source_fires
        self.last_sink_fires = sink_fires
        self.last_accesses = accesses + blocks.shape[0]
        if chunk_words is None:
            yield blocks, phases
            return
        emitted = 0
        while blocks.shape[0] - emitted >= chunk_words:
            yield (
                blocks[emitted:emitted + chunk_words],
                phases[emitted:emitted + chunk_words],
            )
            emitted += chunk_words
        if blocks.shape[0] > emitted:
            yield blocks[emitted:], phases[emitted:]

    def compile(self, schedule: Schedule) -> CompiledTrace:
        """Compile every firing of ``schedule`` (flat or looped) to a trace.

        One full :meth:`compile_chunks` pass with no chunking: the whole
        trace materializes as a single chunk.  Validation, buffer mutation,
        and fresh-compiler caveats are exactly as documented there.
        """
        blocks, phases = next(self.compile_chunks(schedule, chunk_words=None))
        return CompiledTrace(
            label=self.last_label,
            block=self.block,
            blocks=blocks,
            phases=phases,
            firings=self.last_firings,
            fire_counts=dict(self.last_fire_counts),
            source_fires=self.last_source_fires,
            sink_fires=self.last_sink_fires,
        )


def compile_trace_uncached(
    graph: StreamGraph,
    schedule: Schedule,
    block: int,
    capacities: Optional[Dict[int, int]] = None,
    layout_order: Optional[Iterable[str]] = None,
    count_external: bool = True,
    placement: Optional[Sequence[ObjectKey]] = None,
    gaps: Optional[Dict[ObjectKey, int]] = None,
) -> CompiledTrace:
    """Always-compile core of :func:`compile_trace` (never reads the cache;
    what :func:`repro.runtime.trace_cache.cached_compile_trace` calls on a
    miss — routing it through :func:`compile_trace` would recurse)."""
    if capacities is None:
        capacities = getattr(schedule, "capacities", None)
    with obs.span(obs_names.COMPILE):
        compiler = TraceCompiler(
            graph,
            block,
            capacities=capacities,
            layout_order=layout_order,
            count_external=count_external,
            placement=placement,
            gaps=gaps,
        )
        trace = compiler.compile(schedule)
    obs.add(obs_names.COMPILE_CALLS)
    obs.add(obs_names.COMPILE_ACCESSES, trace.accesses)
    return trace


@overload
def compile_trace(
    graph: StreamGraph,
    schedule: Schedule,
    block: int,
    capacities: Optional[Dict[int, int]] = ...,
    layout_order: Optional[Iterable[str]] = ...,
    count_external: bool = ...,
    placement: Optional[Sequence[ObjectKey]] = ...,
    gaps: Optional[Dict[ObjectKey, int]] = ...,
    chunk_words: None = ...,
) -> CompiledTrace: ...


@overload
def compile_trace(
    graph: StreamGraph,
    schedule: Schedule,
    block: int,
    capacities: Optional[Dict[int, int]] = ...,
    layout_order: Optional[Iterable[str]] = ...,
    count_external: bool = ...,
    placement: Optional[Sequence[ObjectKey]] = ...,
    gaps: Optional[Dict[ObjectKey, int]] = ...,
    *,
    chunk_words: int,
) -> "ChunkedTrace": ...


def compile_trace(
    graph: StreamGraph,
    schedule: Schedule,
    block: int,
    capacities: Optional[Dict[int, int]] = None,
    layout_order: Optional[Iterable[str]] = None,
    count_external: bool = True,
    placement: Optional[Sequence[ObjectKey]] = None,
    gaps: Optional[Dict[ObjectKey, int]] = None,
    chunk_words: Optional[int] = None,
) -> Union[CompiledTrace, "ChunkedTrace"]:
    """One-shot convenience: compile ``schedule`` against a fresh layout.

    ``capacities`` defaults to the schedule's own (the ``Executor.measure``
    convention), overlaid on minBuf.  ``placement`` fixes the complete
    object order and ``gaps`` the deliberate per-object padding (see
    :meth:`repro.mem.layout.MemoryLayout.place_graph`) — the path optimized
    layouts from :mod:`repro.mem.placement` take.

    When a persistent trace cache is configured
    (:func:`repro.runtime.trace_cache.configure`, the CLI's ``--cache-dir``),
    the compilation is content-addressed through it: a previously compiled
    identical input loads off disk instead of recompiling — bit-identical
    by the digest contract.  With no cache configured (the default), this
    compiles unconditionally and touches no disk.

    ``chunk_words`` switches to out-of-core streaming compilation: the
    trace is produced in fixed-size chunks that spill to content-addressed
    ``.npz`` segments as they are compiled, and the return value is a
    :class:`~repro.runtime.streaming.ChunkedTrace` whose peak memory is
    O(``chunk_words``) regardless of schedule length.  It replays through
    the same :func:`simulate_trace` front door, bit-identically to the
    monolithic trace.
    """
    from repro.runtime.trace_cache import cached_compile_trace, default_cache

    if chunk_words is not None:
        from repro.runtime.streaming import compile_trace_chunked

        return compile_trace_chunked(
            graph, schedule, block, chunk_words, capacities=capacities,
            layout_order=layout_order, count_external=count_external,
            placement=placement, gaps=gaps, cache=default_cache(),
        )
    if default_cache() is not None:
        trace, _key, _hit = cached_compile_trace(
            graph, schedule, block, capacities=capacities,
            layout_order=layout_order, count_external=count_external,
            placement=placement, gaps=gaps,
        )
        return trace
    return compile_trace_uncached(
        graph, schedule, block, capacities=capacities,
        layout_order=layout_order, count_external=count_external,
        placement=placement, gaps=gaps,
    )


def _result_from_stats(
    trace: CompiledTrace, misses: int, phase_counts: Optional[List[int]]
) -> ExecutionResult:
    """Assemble one :class:`ExecutionResult` from reduced replay statistics
    (what the process backend ships back instead of per-access masks)."""
    phase_misses: Dict[str, int] = {}
    if phase_counts is not None and misses:
        phase_misses = {
            PHASE_NAMES[code]: int(c)
            for code, c in enumerate(phase_counts)
            if c and PHASE_NAMES[code]
        }
    return ExecutionResult(
        label=trace.label,
        firings=trace.firings,
        misses=misses,
        accesses=trace.accesses,
        phase_misses=phase_misses,
        fire_counts=dict(trace.fire_counts),
        source_fires=trace.source_fires,
        sink_fires=trace.sink_fires,
    )


def simulate_trace(
    trace: Union[CompiledTrace, "ChunkedTrace"],
    geometries: Sequence[CacheGeometry],
    policy: str = "lru",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    chunk_words: Optional[int] = None,
) -> List[ExecutionResult]:
    """Miss counts of ``policy`` at every geometry from one compiled trace.

    Dispatches to the vectorized replay kernel registered for ``policy``
    (:mod:`repro.runtime.replay`): ``"lru"`` (fully associative via one
    Mattson stack-distance pass, or set-associative per ``geometry.ways``),
    ``"direct"`` (per-frame last-block scan), ``"opt"`` (Belady via a
    truncated priority-stack pass answering every swept capacity at once),
    or ``"two_level"`` (hierarchies: geometries are
    :class:`~repro.cache.hierarchy.TwoLevelGeometry` (L1, L2) pairs, and
    misses are memory transfers out of L2).  All geometries must share the
    trace's block size — the trace's addresses were laid out for it.  Each
    result is identical to running the stepwise engine for that policy on
    the same trace: same misses, same accesses, same per-phase miss
    attribution.

    ``backend`` selects where the evaluation runs
    (:mod:`repro.runtime.backend`): ``"serial"``/``"thread"`` run the
    kernels in-process (threads fan the per-geometry mask evaluation out
    after the shared distance passes, clamped per
    :func:`~repro.runtime.backend.effective_workers`); ``"process"`` ships
    the trace to a process pool once via shared memory and chunks the
    geometry list over it — bit-identical results in input order either
    way, since the kernels are pure functions of ``(blocks, geometries)``.
    ``backend=None`` (default) follows the configured process-wide default,
    preserving the historical ``workers=``-threads behaviour.

    ``trace`` may also be a :class:`~repro.runtime.streaming.ChunkedTrace`
    (out-of-core compilation), replayed chunk by chunk with carried kernel
    state; or pass ``chunk_words=`` with an in-memory trace to replay it in
    bounded-size chunks.  Either way the results are bit-identical to the
    monolithic replay (the differential contract of
    ``tests/test_streaming.py``); ``chunk_words=None`` follows the
    configured process-wide default
    (:func:`repro.runtime.backend.configure`, the CLI's ``--chunk-words``).
    """
    geometries = list(geometries)
    for geom in geometries:
        if geom.block != trace.block:
            raise CacheConfigError(
                f"geometry block {geom.block} does not match trace block "
                f"{trace.block}; recompile the trace for this block size"
            )
    from repro.runtime.streaming import ChunkedTrace, simulate_stream

    if isinstance(trace, ChunkedTrace):
        return simulate_stream(
            trace, geometries, policy=policy, workers=workers,
            backend=backend, chunk_words=chunk_words,
        )
    if chunk_words is None:
        from repro.runtime.backend import default_chunk_words

        chunk_words = default_chunk_words()
    if chunk_words is not None:
        return simulate_stream(
            trace, geometries, policy=policy, workers=workers,
            backend=backend, chunk_words=chunk_words,
        )
    from repro.runtime.backend import process_sweep, resolve

    name, width = resolve(backend, workers, len(geometries))
    if name == "process" and geometries and trace.accesses:
        from repro.cache.policy import get_policy

        get_policy(policy)  # fail on unknown names here, not in a worker
        stats = process_sweep(
            trace.blocks, trace.phases, geometries, policy, width
        )
        # parent-side so the tally matches serial runs exactly (workers
        # ship their own replay counters back; misses are counted here)
        obs.add(obs_names.REPLAY_MISSES, sum(m for m, _counts in stats))
        return [_result_from_stats(trace, m, counts) for m, counts in stats]
    from repro.runtime.replay import replay_miss_masks

    masks = replay_miss_masks(
        trace.blocks, geometries, policy=policy,
        workers=width if name == "thread" else None,
    )
    results: List[ExecutionResult] = []
    total_misses = 0
    for geom, miss_mask in zip(geometries, masks):
        misses = int(np.count_nonzero(miss_mask))
        total_misses += misses
        counts: Optional[List[int]] = None
        if trace.phases is not None:
            counts = np.bincount(
                trace.phases[miss_mask], minlength=len(PHASE_NAMES)
            ).tolist()
        results.append(_result_from_stats(trace, misses, counts))
    obs.add(obs_names.REPLAY_MISSES, total_misses)
    return results


def measure_compiled(
    graph: StreamGraph,
    geometry: CacheGeometry,
    schedule: Schedule,
    layout_order: Optional[Iterable[str]] = None,
    count_external: bool = True,
    policy: str = "lru",
    workers: Optional[int] = None,
    placement: Optional[Sequence[ObjectKey]] = None,
    gaps: Optional[Dict[ObjectKey, int]] = None,
    backend: Optional[str] = None,
    cache: Optional[object] = None,
    chunk_words: Optional[int] = None,
) -> ExecutionResult:
    """Drop-in for ``Executor.measure``, via compilation.

    Compiles the schedule once and evaluates the single geometry with the
    vectorized kernel of ``policy`` — exact same result, no stepwise cache
    simulation.  ``cache`` (a :class:`repro.runtime.trace_cache.TraceCache`)
    routes the compilation through the persistent content-addressed cache;
    ``backend`` picks the execution backend exactly as in
    :func:`simulate_trace`.  ``chunk_words`` switches both the compilation
    and the replay to the out-of-core streaming path
    (:mod:`repro.runtime.streaming`): identical result, O(``chunk_words``)
    peak memory.
    """
    trace: Union[CompiledTrace, "ChunkedTrace"]
    if chunk_words is not None:
        from repro.runtime.streaming import compile_trace_chunked
        from repro.runtime.trace_cache import TraceCache, default_cache

        seg_cache = cache if isinstance(cache, TraceCache) else default_cache()
        trace = compile_trace_chunked(
            graph,
            schedule,
            geometry.block,
            chunk_words,
            layout_order=layout_order,
            count_external=count_external,
            placement=placement,
            gaps=gaps,
            cache=seg_cache,
        )
    elif cache is not None:
        from repro.runtime.trace_cache import cached_compile_trace

        trace, _key, _hit = cached_compile_trace(
            graph,
            schedule,
            geometry.block,
            layout_order=layout_order,
            count_external=count_external,
            placement=placement,
            gaps=gaps,
            cache=cache,  # type: ignore[arg-type]
        )
    else:
        trace = compile_trace(
            graph,
            schedule,
            geometry.block,
            layout_order=layout_order,
            count_external=count_external,
            placement=placement,
            gaps=gaps,
        )
    return simulate_trace(
        trace, [geometry], policy=policy, workers=workers, backend=backend
    )[0]
