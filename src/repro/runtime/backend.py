"""Execution backends: serial / thread / process fan-out behind ``workers=``.

Everything the replay engine parallelizes is an ordered map — per-geometry
mask evaluation in :func:`repro.runtime.replay.replay_miss_masks`,
per-candidate scoring in :func:`repro.mem.placement.swap_refine`, per-query
evaluation in :func:`run_batch` — so this module centralizes one contract:

* **Ordering.**  Every backend returns results in the exact order of its
  inputs: ``fan_out(fn, items)[i] == fn(items[i])`` for all ``i``,
  regardless of which worker finished first.  (Pools preserve submission
  order by construction — ``Executor.map`` yields in input order — and the
  serial path is a list comprehension.)  Callers never re-sort.
* **Clamping.**  Pool width is ``min(workers, len(items), os.cpu_count())``
  (:func:`effective_workers`): a pool wider than the item list or the
  machine only adds startup cost.  Zero/negative/None worker counts mean
  "serial".
* **Three names** (:data:`BACKENDS`): ``"serial"`` never builds a pool;
  ``"thread"`` uses a thread pool (numpy releases the GIL inside the heavy
  ufuncs, so threads help exactly when the work is vectorized);
  ``"process"`` uses a process pool for Python-heavy work the GIL would
  serialize.  An explicitly requested process backend keeps its pool even
  at one worker — a distinct process either way, so differential tests
  exercise the real cross-process path on any machine.

**Shipping traces to workers.**  A compiled trace is one or two large flat
arrays (``int64`` block ids, ``uint8`` phase codes — often 100k+ accesses).
Pickling them per task would dwarf the work, so :class:`SharedTrace`
publishes them once into a :mod:`multiprocessing.shared_memory` segment and
workers reconstruct zero-copy ``np.ndarray`` views over the mapped buffer
(:func:`process_sweep`); per-task payloads are just geometry lists.  The
placement scorer (:class:`CandidateScorer`) does the same with the
remap-instance arrays (``obj_of_access``/``block_offset``): candidates ship
as tiny per-object start vectors, never as traces.

**Batch front door.**  :func:`run_batch` answers N
(graph, schedule, geometries, policy) queries the way a many-user service
must: queries are grouped by their content digest
(:func:`repro.runtime.trace_cache.trace_digest`), each distinct trace is
compiled **once** (through the persistent cache when one is configured),
geometry sweeps sharing a (trace, policy) pair are evaluated together so
the replay kernels' shared passes amortize across users, and evaluation
fans out over the selected backend.  Answers come back in query order.

Geometry presets default to ``index_scheme="mod"``: BENCH_placement.json
measured ``xor_gain`` flat at 1.0 on the paper's workloads, so the service
path never pays the xor fold for zero gain (pass ``index_scheme="xor"``
explicitly to get skewed indexing — see docs/REPLAY.md).

Results are bit-identical across backends: the kernels are pure functions
of ``(blocks, geometries)``, so where the map runs cannot change what it
computes — ``tests/test_backend.py`` pins this differentially for every
registered policy under both index schemes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import CacheConfigError
from repro.obs import core as obs
from repro.obs import names as obs_names

if TYPE_CHECKING:
    from repro.cache.base import CacheGeometry
    from repro.graphs.sdf import StreamGraph
    from repro.mem.layout import ObjectKey
    from repro.mem.placement import PlacementInstance, PlacementTarget
    from repro.runtime.executor import ExecutionResult
    from repro.runtime.schedule import Schedule
    from repro.runtime.trace_cache import TraceCache

__all__ = [
    "BACKENDS",
    "DEFAULT_INDEX_SCHEME",
    "normalize_backend",
    "effective_workers",
    "resolve",
    "configure",
    "default_chunk_words",
    "fan_out",
    "SharedTrace",
    "process_sweep",
    "process_chunk_sweep",
    "CandidateScorer",
    "geometry_sweep",
    "ServiceQuery",
    "ServiceAnswer",
    "run_batch",
]

#: The three execution backends, in "least machinery" order.
BACKENDS = ("serial", "thread", "process")

#: Service presets index sets with low block bits: BENCH_placement.json's
#: ``xor_gain`` is flat at 1.0, so xor folding is opt-in, never default.
DEFAULT_INDEX_SCHEME = "mod"


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def normalize_backend(backend: str) -> str:
    """Validate a backend name against :data:`BACKENDS`."""
    if backend not in BACKENDS:
        raise CacheConfigError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    return backend


def effective_workers(workers: Optional[int], n_items: int) -> int:
    """The pool width actually worth building:
    ``min(workers, n_items, os.cpu_count())``, floored at 1.

    ``None`` or a non-positive count means serial (width 1).  A pool wider
    than the item list idles from the first task; wider than the machine,
    it only adds scheduler pressure — neither can go faster.
    """
    if not workers or workers <= 1:
        return 1
    return max(1, min(int(workers), n_items, os.cpu_count() or 1))


_DEFAULTS: Dict[str, object] = {
    "backend": "thread",
    "workers": None,
    "chunk_words": None,
}


def configure(
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_words: Optional[int] = None,
) -> Tuple[str, Optional[int], Optional[int]]:
    """Set the process-wide default ``(backend, workers, chunk_words)``.

    This is what the CLI's ``--backend``/``--workers``/``--chunk-words``
    flags install so experiment drivers (which take no backend parameters)
    inherit the choice.  Returns the previous triple so callers can restore
    it (``configure(*previous)``).  The initial default —
    ``("thread", None, None)`` — reproduces the historical behaviour
    exactly: no pool unless a caller passes ``workers=``, monolithic replay
    unless a caller passes ``chunk_words=``.
    """
    previous = (
        str(_DEFAULTS["backend"]),
        _DEFAULTS["workers"],
        _DEFAULTS["chunk_words"],
    )
    if backend is not None:
        _DEFAULTS["backend"] = normalize_backend(backend)
    _DEFAULTS["workers"] = workers
    if chunk_words is not None and chunk_words < 1:
        raise CacheConfigError(f"chunk_words must be >= 1, got {chunk_words}")
    _DEFAULTS["chunk_words"] = chunk_words
    return previous  # type: ignore[return-value]


def default_chunk_words() -> Optional[int]:
    """The configured default replay chunk size, or ``None`` (monolithic).

    :func:`repro.runtime.compiled.simulate_trace` consults this whenever a
    caller passes no explicit ``chunk_words=``, so installing a default
    (the CLI's ``--chunk-words``) streams every replay in the process.
    """
    value = _DEFAULTS["chunk_words"]
    return None if value is None else int(value)  # type: ignore[arg-type]


def resolve(
    backend: Optional[str], workers: Optional[int], n_items: int
) -> Tuple[str, int]:
    """Resolve ``(backend, workers)`` call parameters to a concrete plan.

    ``backend=None`` reads the configured default (and, when ``workers`` is
    also ``None``, the configured default width).  An explicit ``"process"``
    request with no width gets every core; an unconfigured thread backend
    with no width stays serial (the pre-backend contract of ``workers=``).
    Returns ``(name, width)`` with width already clamped.
    """
    if backend is None:
        backend = str(_DEFAULTS["backend"])
        if workers is None:
            workers = _DEFAULTS["workers"]  # type: ignore[assignment]
        explicit = _DEFAULTS["workers"] is not None
    else:
        explicit = True
    backend = normalize_backend(backend)
    if backend == "serial":
        return "serial", 1
    if workers is None:
        if backend == "process" and explicit:
            workers = os.cpu_count() or 1
        else:
            return backend, 1
    width = effective_workers(workers, n_items)
    if width <= 1:
        # a process backend honoured at width 1 still crosses the process
        # boundary (differential tests rely on this); threads at width 1
        # are pure overhead and collapse to serial
        return ("process", 1) if backend == "process" else ("serial", 1)
    return backend, width


def _mp_context():
    import multiprocessing as mp

    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()  # pragma: no cover - non-fork platforms


def fan_out(
    fn: Callable,
    items: Sequence,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List:
    """Ordered map: ``fan_out(fn, items)[i] == fn(items[i])``, always.

    The backend only chooses *where* each call runs; submission-order
    ``Executor.map`` (or the serial comprehension) guarantees the results
    come back in input order.  The process backend requires ``fn`` and each
    item to be picklable — module-level functions, not closures.
    """
    name, width = resolve(backend, workers, len(items))
    obs.add(obs_names.BACKEND_TASKS, len(items))
    obs.gauge(obs_names.BACKEND_WIDTH, width)
    with obs.span(obs_names.BACKEND_MAP, backend=name):
        if name == "serial" or width <= 1 and name != "process":
            return [fn(it) for it in items]
        if name == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=width) as pool:
                return list(pool.map(fn, items))
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=width, mp_context=_mp_context()) as pool:
            return list(pool.map(fn, items))


# ----------------------------------------------------------------------
# shared-memory trace shipping
# ----------------------------------------------------------------------
class SharedTrace:
    """A compiled trace published once into shared memory.

    Layout: ``n * 8`` bytes of ``int64`` block ids, then (optionally) ``n``
    bytes of ``uint8`` phase codes, in one segment.  Workers attach by name
    and build zero-copy ``np.ndarray`` views (:func:`_attach_trace`) — the
    arrays are never pickled, no matter how many tasks replay them.  Use as
    a context manager; the parent unlinks the segment on exit.
    """

    def __init__(self, blocks: np.ndarray, phases: Optional[np.ndarray]) -> None:
        from multiprocessing import shared_memory

        blocks = np.ascontiguousarray(blocks, dtype=np.int64)
        self.n = int(blocks.shape[0])
        self.has_phases = phases is not None
        nbytes = self.n * 8 + (self.n if self.has_phases else 0)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        view = np.ndarray((self.n,), dtype=np.int64, buffer=self._shm.buf)
        view[:] = blocks
        if phases is not None:
            pview = np.ndarray(
                (self.n,), dtype=np.uint8, buffer=self._shm.buf, offset=self.n * 8
            )
            pview[:] = np.ascontiguousarray(phases, dtype=np.uint8)
        self.name = self._shm.name

    def close(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - double close
            pass

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_WORKER_TRACE: Dict[str, object] = {}


def _attach_trace(shm_name: str, n: int, has_phases: bool) -> None:
    """Pool initializer: map the published trace into this worker, zero-copy.

    Workers never unlink (or unregister) the segment — its lifetime belongs
    to the parent's :class:`SharedTrace`, which unlinks once the pool is
    drained.  Attach-side registrations are set-idempotent in the resource
    tracker shared by the forked children, so the parent's single unlink
    leaves the books balanced.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    _WORKER_TRACE["shm"] = shm  # keep the mapping alive for the views below
    _WORKER_TRACE["blocks"] = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
    _WORKER_TRACE["phases"] = (
        np.ndarray((n,), dtype=np.uint8, buffer=shm.buf, offset=n * 8)
        if has_phases
        else None
    )


def _chunk_stats(
    blocks: np.ndarray,
    phases: Optional[np.ndarray],
    geometries: List,
    policy: str,
) -> List[Tuple[int, Optional[List[int]]]]:
    """Per-geometry ``(misses, phase_bincount-or-None)`` of one chunk."""
    from repro.runtime.compiled import PHASE_NAMES
    from repro.runtime.replay import replay_miss_masks

    out: List[Tuple[int, Optional[List[int]]]] = []
    for mask in replay_miss_masks(blocks, geometries, policy=policy):
        misses = int(np.count_nonzero(mask))
        counts: Optional[List[int]] = None
        if phases is not None:
            counts = (
                np.bincount(phases[mask], minlength=len(PHASE_NAMES)).tolist()
                if misses
                else [0] * len(PHASE_NAMES)
            )
        out.append((misses, counts))
    return out


def _sweep_chunk(
    task: Tuple[int, List, str, bool]
) -> Tuple[int, List, Optional[Dict]]:
    """Worker body: replay one geometry chunk over the attached trace.

    Returns per-geometry ``(misses, phase_bincount-or-None)`` — the reduced
    statistics, never the per-access masks, so nothing big crosses back.
    When the parent had instrumentation enabled (``want_obs``), the chunk
    runs inside an isolated :class:`repro.obs.core.capture` scope and its
    metric/span delta rides back as the third element for the parent to
    merge — that is how spans aggregate across the process backend.
    """
    chunk_index, geometries, policy, want_obs = task
    blocks = _WORKER_TRACE["blocks"]
    phases = _WORKER_TRACE["phases"]
    if want_obs:
        with obs.capture(enabled=True) as cap:
            out = _chunk_stats(blocks, phases, geometries, policy)  # type: ignore[arg-type]
        return chunk_index, out, cap.snapshot
    out = _chunk_stats(blocks, phases, geometries, policy)  # type: ignore[arg-type]
    return chunk_index, out, None


def _chunk_slices(n_items: int, width: int) -> List[Tuple[int, int]]:
    """Contiguous, order-preserving chunk bounds: one-ish chunk per worker."""
    n_chunks = min(max(1, width), n_items)
    bounds = np.linspace(0, n_items, n_chunks + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def process_sweep(
    blocks: np.ndarray,
    phases: Optional[np.ndarray],
    geometries: Sequence,
    policy: str,
    workers: int,
) -> List[Tuple[int, Optional[List[int]]]]:
    """Per-geometry ``(misses, phase_bincount)`` via a process pool.

    The trace is published to shared memory once; geometry chunks (tiny,
    picklable) are the only per-task payload.  Results come back in
    geometry order.  Bit-identical to the in-process replay: the kernels
    are deterministic functions of ``(blocks, geometries)``.
    """
    from concurrent.futures import ProcessPoolExecutor

    slices = _chunk_slices(len(geometries), workers)
    want_obs = obs.is_enabled()
    tasks = [
        (i, list(geometries[lo:hi]), policy, want_obs)
        for i, (lo, hi) in enumerate(slices)
    ]
    obs.add(obs_names.BACKEND_TASKS, len(tasks))
    obs.gauge(obs_names.BACKEND_WIDTH, min(workers, len(slices)))
    out: List[Optional[List]] = [None] * len(slices)
    snaps: List[Optional[Dict]] = [None] * len(slices)
    with obs.span(obs_names.BACKEND_MAP, backend="process"):
        with SharedTrace(blocks, phases) as shared:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(slices)),
                mp_context=_mp_context(),
                initializer=_attach_trace,
                initargs=(shared.name, shared.n, shared.has_phases),
            ) as pool:
                for chunk_index, stats, snap in pool.map(_sweep_chunk, tasks):
                    out[chunk_index] = stats
                    snaps[chunk_index] = snap
    # merge worker deltas in chunk order: the merged totals then equal
    # what one serial call over the full geometry list would have recorded
    for snap in snaps:
        if snap is not None:
            obs.merge(snap)
    flat: List[Tuple[int, Optional[List[int]]]] = []
    for stats in out:
        assert stats is not None
        flat.extend(stats)
    return flat


def _stream_chunk_worker(
    task: Tuple[int, str, np.ndarray, List, str, bool]
) -> Tuple[int, List[Tuple[int, Optional[List[int]]]], Optional[Dict]]:
    """Worker body: replay ONE trace chunk (all geometries) under its carry.

    The parent computed the chunk's recency carry (cheap, sequential) and
    ships it with the segment path; the worker loads the segment arrays
    straight off disk — the cache's documented one-``.npz``-per-key layout —
    and returns reduced ``(misses, phase_bincount)`` per geometry, exactly
    the per-chunk terms the sequential stream would have summed.
    """
    from repro.runtime.compiled import PHASE_NAMES
    from repro.runtime.streaming import _flat_chunk_masks

    index, path, carry, geometries, policy, want_obs = task

    def _stats() -> List[Tuple[int, Optional[List[int]]]]:
        with np.load(path, allow_pickle=False) as data:
            blocks = np.asarray(data["blocks"], dtype=np.int64)
            phases = (
                np.asarray(data["phases"], dtype=np.uint8)
                if "phases" in data.files
                else None
            )
        out: List[Tuple[int, Optional[List[int]]]] = []
        for mask in _flat_chunk_masks(blocks, carry, geometries, policy):
            misses = int(np.count_nonzero(mask))
            counts: Optional[List[int]] = None
            if phases is not None:
                counts = np.bincount(
                    phases[mask], minlength=len(PHASE_NAMES)
                ).tolist()
            out.append((misses, counts))
        return out

    if want_obs:
        with obs.capture(enabled=True) as cap:
            stats = _stats()
        return index, stats, cap.snapshot
    return index, _stats(), None


def process_chunk_sweep(
    trace: "object",
    geometries: Sequence,
    policy: str,
    workers: int,
) -> List[Tuple[int, Optional[List[int]]]]:
    """Per-geometry ``(misses, phase_bincount)`` by fanning *trace chunks*
    (not geometries) over a process pool — the streaming twin of
    :func:`process_sweep` for a :class:`~repro.runtime.streaming.ChunkedTrace`.

    Chunk replays are independent once each chunk's recency carry is known,
    and the carries are cheap to compute (one vectorized fold per chunk), so
    the parent walks the chunks once to build carries while workers do the
    expensive distance passes.  Only lru/direct stream this way — OPT and
    two-level carry kernel state *through* the chunks, which serializes
    them.  Per-chunk stats are summed in chunk order, and worker obs deltas
    merge in chunk order too, so totals are bit-identical to the sequential
    stream.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.runtime.streaming import ChunkedTrace, recency_carry

    assert isinstance(trace, ChunkedTrace)
    geoms = list(geometries)
    want_obs = obs.is_enabled()
    tasks: List[Tuple[int, str, np.ndarray, List, str, bool]] = []
    carry = np.zeros(0, dtype=np.int64)
    for i in range(trace.n_chunks):
        tasks.append(
            (i, str(trace.segment_path(i)), carry, geoms, policy, want_obs)
        )
        blocks, _phases = trace.chunk(i)
        carry = recency_carry(carry, blocks)
    width = min(workers, max(1, len(tasks)))
    obs.add(obs_names.BACKEND_TASKS, len(tasks))
    obs.gauge(obs_names.BACKEND_WIDTH, width)
    results: List[Optional[List[Tuple[int, Optional[List[int]]]]]] = [
        None
    ] * len(tasks)
    snaps: List[Optional[Dict]] = [None] * len(tasks)
    with obs.span(obs_names.BACKEND_MAP, backend="process"):
        with ProcessPoolExecutor(
            max_workers=width, mp_context=_mp_context()
        ) as pool:
            for index, stats, snap in pool.map(_stream_chunk_worker, tasks):
                results[index] = stats
                snaps[index] = snap
    for snap in snaps:
        if snap is not None:
            obs.merge(snap)
    totals = [0] * len(geoms)
    counts: List[Optional[List[int]]] = [None] * len(geoms)
    for stats in results:
        assert stats is not None
        for gi, (m, c) in enumerate(stats):
            totals[gi] += m
            if c is not None:
                prev = counts[gi]
                counts[gi] = c if prev is None else [a + b for a, b in zip(prev, c)]
    return list(zip(totals, counts))


# ----------------------------------------------------------------------
# placement candidate scoring
# ----------------------------------------------------------------------
_SCORER_STATE: Dict[str, object] = {}


def _attach_scorer(
    shm_name: str,
    n: int,
    targets: List[Tuple["CacheGeometry", str, float]],
    want_obs: bool,
    chunk_words: Optional[int] = None,
) -> None:
    """Pool initializer: map the remap-instance arrays; keep targets local."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    _SCORER_STATE["shm"] = shm
    _SCORER_STATE["obj"] = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
    _SCORER_STATE["off"] = np.ndarray(
        (n,), dtype=np.int64, buffer=shm.buf, offset=n * 8
    )
    _SCORER_STATE["targets"] = targets
    _SCORER_STATE["obs"] = want_obs
    _SCORER_STATE["chunk_words"] = chunk_words


def _score_candidate_remote(
    task: Tuple[int, np.ndarray]
) -> Tuple[int, List[int], Optional[Dict]]:
    """Worker body: per-target miss counts of one candidate's start vector.

    Returns the raw per-target counts (the parent folds them into whatever
    objective the search runs — weighted sum, worst-case ratio) and ships
    the candidate's obs delta back when the parent had instrumentation
    enabled at pool construction.
    """
    from repro.mem.placement import _target_misses

    index, starts = task
    obj = _SCORER_STATE["obj"]
    off = _SCORER_STATE["off"]
    targets = _SCORER_STATE["targets"]

    def _per() -> List[int]:
        blocks = starts[obj] + off
        return _target_misses(
            blocks, targets, chunk_words=_SCORER_STATE.get("chunk_words")  # type: ignore[arg-type]
        )

    if _SCORER_STATE.get("obs"):
        with obs.capture(enabled=True) as cap:
            per = _per()
        return index, per, cap.snapshot
    return index, _per(), None


class CandidateScorer:
    """Scores placement candidates — (order, gaps) start vectors — on the
    exact remap cost model, optionally across a process pool.

    The instance's ``obj_of_access``/``block_offset`` arrays (one entry per
    trace access — the big data) are published to shared memory once at
    construction; each candidate ships as its ``starts`` vector (one entry
    per object — tiny).  Serial and process scoring are bit-identical, so a
    search driven by this scorer takes the same trajectory on every
    backend; only wall-time changes.  Use as a context manager or call
    :meth:`close` — the pool and segment live until then.

    ``evals`` counts every candidate ever scored through this scorer —
    :meth:`score` and :meth:`score_per` both increment it by the number of
    candidates they evaluate, on every backend — so a search's
    ``RefineStats.evals`` can be read straight off the scorer instead of
    being re-derived by hand at each call site (the A12 "equal eval
    budget" comparisons are only honest if nothing is missed).
    """

    def __init__(
        self,
        instance: "PlacementInstance",
        targets: Sequence["PlacementTarget"],
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        chunk_words: Optional[int] = None,
    ) -> None:
        self.instance = instance
        self.targets = list(targets)
        self.chunk_words = chunk_words
        #: candidates scored so far (every backend, every score call)
        self.evals = 0
        name, width = resolve(backend, workers, os.cpu_count() or 1)
        self._pool = None
        if name == "process":
            from concurrent.futures import ProcessPoolExecutor
            from multiprocessing import shared_memory

            obj = np.ascontiguousarray(instance.obj_of_access, dtype=np.int64)
            off = np.ascontiguousarray(instance.block_offset, dtype=np.int64)
            n = int(obj.shape[0])
            shm = shared_memory.SharedMemory(create=True, size=max(1, n * 16))
            np.ndarray((n,), dtype=np.int64, buffer=shm.buf)[:] = obj
            np.ndarray((n,), dtype=np.int64, buffer=shm.buf, offset=n * 8)[:] = off
            self._shm = shm
            self._pool = ProcessPoolExecutor(
                max_workers=width,
                mp_context=_mp_context(),
                initializer=_attach_scorer,
                # obs state is frozen at pool construction: enable
                # instrumentation before building the scorer
                initargs=(shm.name, n, self.targets, obs.is_enabled(), chunk_words),
            )
        else:
            self._shm = None

    def score_per(self, starts_list: Sequence[np.ndarray]) -> List[List[int]]:
        """Per-target miss counts, one list per candidate, in candidate
        order — the raw material for any objective (weighted sum, minimax
        worst-case ratio).  Counts toward :attr:`evals`."""
        self.evals += len(starts_list)
        if self._pool is None:
            from repro.mem.placement import _target_misses

            return [
                _target_misses(
                    starts[self.instance.obj_of_access] + self.instance.block_offset,
                    self.targets, chunk_words=self.chunk_words,
                )
                for starts in starts_list
            ]
        tasks = [(i, starts) for i, starts in enumerate(starts_list)]
        out_arr: List[List[int]] = [[] for _ in tasks]
        with obs.span(obs_names.BACKEND_MAP, backend="process"):
            # pool.map yields in submission order, so worker deltas merge
            # deterministically — same totals as the serial score path
            for i, per, snap in self._pool.map(_score_candidate_remote, tasks):
                out_arr[i] = per
                if snap is not None:
                    obs.merge(snap)
        return out_arr

    def score(self, starts_list: Sequence[np.ndarray]) -> List[float]:
        """Weighted miss sums, one per candidate, in candidate order."""
        return [
            sum(w * m for (_g, _p, w), m in zip(self.targets, per))
            for per in self.score_per(starts_list)
        ]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            self._shm = None

    def __enter__(self) -> "CandidateScorer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# batch front door
# ----------------------------------------------------------------------
def geometry_sweep(
    sizes: Iterable[int],
    block: int,
    ways: Optional[int] = None,
    index_scheme: str = DEFAULT_INDEX_SCHEME,
) -> List["CacheGeometry"]:
    """Service preset: one :class:`~repro.cache.base.CacheGeometry` per
    capacity, mod-indexed unless ``index_scheme="xor"`` is requested
    explicitly (the measured xor gain on the paper's workloads is 1.0 —
    see docs/REPLAY.md)."""
    from repro.cache.base import CacheGeometry

    return [
        CacheGeometry(
            size=int(s), block=int(block), ways=ways, index_scheme=index_scheme
        )
        for s in sizes
    ]


@dataclass
class ServiceQuery:
    """One user's question: misses of ``policy`` at every geometry for this
    (graph, schedule, layout) — the unit :func:`run_batch` deduplicates."""

    graph: "StreamGraph"
    schedule: "Schedule"
    block: int
    geometries: Sequence
    policy: str = "lru"
    capacities: Optional[Dict[int, int]] = None
    layout_order: Optional[Sequence[str]] = None
    count_external: bool = True
    placement: Optional[Sequence["ObjectKey"]] = None
    gaps: Optional[Dict["ObjectKey", int]] = None
    #: per-query replay chunk size; ``None`` inherits ``run_batch``'s
    chunk_words: Optional[int] = None
    #: placement strategy to run before answering (``None``/``"topo"`` =
    #: measure the seed layout as-is; any other registered name —
    #: ``swap``/``multiswap``/``smoothed``/``minimax`` — optimizes the
    #: layout first and the query is answered under the result)
    layout: Optional[str] = None
    #: multi-geometry objective for ``layout``; defaults to every query
    #: geometry at ``policy`` with weight 1
    layout_targets: Optional[Sequence[Tuple]] = None
    #: eval budget of the ``layout`` search
    layout_budget: int = 400
    #: padding blocks the ``layout`` search may spend
    gap_budget: int = 0
    #: smoothed-search knobs (``layout="smoothed"``); ``None`` = defaults
    restarts: Optional[int] = None
    noise: Optional[float] = None
    seed: Optional[int] = None


@dataclass
class ServiceAnswer:
    """One query's results plus its provenance within the batch.

    ``trace_key`` is the content digest the trace was filed under;
    ``cache_hit`` says the compiled trace came off the persistent cache,
    ``deduped`` that an earlier query in the same batch already owned the
    trace (so this one compiled nothing at all).
    """

    index: int
    trace_key: str
    cache_hit: bool
    deduped: bool
    results: List["ExecutionResult"] = field(default_factory=list)


def _resolve_layout(
    q: ServiceQuery,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> ServiceQuery:
    """Run a query's requested placement strategy and pin the result.

    Returns the query unchanged when no optimization was asked for
    (``layout`` absent or ``"topo"``); otherwise runs
    :func:`repro.mem.placement.optimize_placement` — against
    ``layout_targets`` when given, else every query geometry at the query's
    policy, weight 1 — and returns a copy carrying the optimized
    ``placement``/``gaps`` (so batch dedup keys on the *resolved* layout:
    two queries that optimize to the same placement share one trace).
    """
    if q.layout in (None, "topo"):
        return q
    from dataclasses import replace

    from repro.mem.placement import optimize_placement

    targets = q.layout_targets
    if targets is None:
        targets = [(g, q.policy, 1.0) for g in q.geometries]
    res = optimize_placement(
        q.graph, q.schedule, strategy=q.layout, capacities=q.capacities,
        order=q.layout_order, targets=targets, budget=q.layout_budget,
        gap_budget=q.gap_budget, backend=backend, workers=workers,
        restarts=q.restarts, noise=q.noise, seed=q.seed,
    )
    return replace(q, placement=res.order, gaps=res.gaps, layout=None)


def run_batch(
    queries: Sequence[ServiceQuery],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    cache: Optional["TraceCache"] = None,
    chunk_words: Optional[int] = None,
) -> List[ServiceAnswer]:
    """Answer N queries with shared compilation, shared passes, one pool.

    0. Queries carrying a ``layout`` strategy (``swap``/``multiswap``/
       ``smoothed``/``minimax``) are resolved first
       (:func:`_resolve_layout`): the placement search runs under the
       query's targets and the query is answered — and deduplicated —
       under the optimized layout.
    1. Every query's compilation input is digested
       (:func:`repro.runtime.trace_cache.trace_digest`); queries with equal
       digests share one compiled trace — the batch compiles each distinct
       trace exactly once, through the persistent cache when ``cache`` (or
       a configured default) is present.
    2. Queries sharing a (trace, policy, chunk size) triple are evaluated
       in one replay call, concatenating their geometry lists so the
       kernels' shared passes (stack distances, set partitions) amortize
       across users.
    3. Evaluation fans out over ``backend``; answers return in query order,
       each tagged with its digest, cache-hit, and intra-batch dedup flags.

    ``chunk_words`` streams every replay in bounded-memory chunks
    (:mod:`repro.runtime.streaming`) — bit-identical answers; a query's own
    ``chunk_words`` overrides the batch-wide value.
    """
    from repro.runtime.compiled import simulate_trace
    from repro.runtime.trace_cache import cached_compile_trace, trace_digest

    with obs.span(obs_names.BATCH):
        obs.add(obs_names.BATCH_QUERIES, len(queries))
        queries = [
            _resolve_layout(q, backend=backend, workers=workers)
            for q in queries
        ]
        keys = [
            trace_digest(
                q.graph, q.schedule, q.block, capacities=q.capacities,
                layout_order=q.layout_order, count_external=q.count_external,
                placement=q.placement, gaps=q.gaps,
            )
            for q in queries
        ]
        # compile each distinct trace once, in first-appearance order
        traces: Dict[str, Tuple[object, bool]] = {}
        deduped = [False] * len(queries)
        for i, (q, key) in enumerate(zip(queries, keys)):
            if key in traces:
                deduped[i] = True
                continue
            trace, _key, was_hit = cached_compile_trace(
                q.graph, q.schedule, q.block, capacities=q.capacities,
                layout_order=q.layout_order, count_external=q.count_external,
                placement=q.placement, gaps=q.gaps, cache=cache, key=key,
            )
            traces[key] = (trace, was_hit)
        obs.add(obs_names.BATCH_DEDUPED, sum(deduped))

        # group evaluation by (trace, policy, chunk size): one replay call
        # per group — mixing chunked and monolithic sweeps over one trace
        # stays correct because the answers are bit-identical either way
        groups: Dict[Tuple[str, str, Optional[int]], List[int]] = {}
        for i, (q, key) in enumerate(zip(queries, keys)):
            eff = q.chunk_words if q.chunk_words is not None else chunk_words
            groups.setdefault((key, q.policy, eff), []).append(i)
        obs.add(obs_names.BATCH_GROUPS, len(groups))

        answers: List[Optional[ServiceAnswer]] = [None] * len(queries)
        for (key, policy, eff), idxs in groups.items():
            trace, was_hit = traces[key]
            geoms: List = []
            bounds = [0]
            for i in idxs:
                geoms.extend(queries[i].geometries)
                bounds.append(len(geoms))
            results = simulate_trace(
                trace, geoms, policy=policy, workers=workers, backend=backend,  # type: ignore[arg-type]
                chunk_words=eff,
            )
            for slot, i in enumerate(idxs):
                answers[i] = ServiceAnswer(
                    index=i,
                    trace_key=key,
                    cache_hit=was_hit,
                    deduped=deduped[i],
                    results=results[bounds[slot]:bounds[slot + 1]],
                )
        return [a for a in answers if a is not None]
