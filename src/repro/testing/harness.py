"""Reusable differential-test harness: kernel vs oracle over geometry grids.

Every vectorized engine in this library ships with a deliberately simple
stepwise oracle, and the acceptance bar is *bit-identical per-access
agreement* — exact miss positions, not totals.  Before this module, each
test file hand-rolled the same loop (run both engines, zip, assert); as the
kernel×oracle matrix grows (policies × organizations × index schemes ×
placements), those copies drift.  :func:`differential_grid` is the one
loop: it runs the kernel once over the whole grid (so sweeps exercise the
kernels' shared-pass amortization exactly as production does), runs the
oracle per point, and on the first divergence raises an ``AssertionError``
that pinpoints the access — position, block id, both verdicts, and the
recent window of the trace — instead of a bare ``assert list == list``.

:func:`replay_kernel` and :func:`stepwise_oracle` adapt the two registries
(:mod:`repro.runtime.replay` / :mod:`repro.cache.policy`) to the harness
signature, so a policy's whole differential suite is one line::

    differential_grid(replay_kernel("lru"), stepwise_oracle("lru"),
                      geometries, trace)

The harness is engine-agnostic: ``kernel(blocks, grid) -> masks`` and
``oracle(blocks, point) -> mask`` may be anything comparable per access —
downstream users validating new policies or new replay kernels get the
same pretty-printed first divergence for free.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "differential_grid",
    "replay_kernel",
    "stepwise_oracle",
    "format_divergence",
]

#: ``kernel(blocks, grid)`` answers the whole grid at once (the production
#: calling convention — shared passes amortize across points).
Kernel = Callable[[np.ndarray, Sequence], Sequence[Sequence[bool]]]
#: ``oracle(blocks, point)`` answers one grid point (the reference loop).
Oracle = Callable[[np.ndarray, object], Sequence[bool]]


def replay_kernel(policy: str, workers: Optional[int] = None) -> Kernel:
    """The vectorized replay engine of ``policy`` as a harness kernel.

    The returned kernel also accepts an optional ``chunk_words=`` keyword:
    when given, the masks come from the out-of-core streaming engine
    (:func:`repro.runtime.streaming.stream_masks`) at that chunk size
    instead of the monolithic pass, so the same differential grid pins the
    chunked replay against the stepwise oracle too.
    """
    from repro.runtime.replay import replay_miss_masks

    def kernel(
        blocks: np.ndarray, grid: Sequence, chunk_words: Optional[int] = None
    ) -> List[np.ndarray]:
        if chunk_words is not None:
            from repro.runtime.streaming import ArrayChunkSource, stream_masks

            source = ArrayChunkSource(blocks, chunk_words=chunk_words)
            return stream_masks(source, list(grid), policy=policy)
        return replay_miss_masks(blocks, list(grid), policy=policy, workers=workers)

    return kernel


def stepwise_oracle(policy: str) -> Oracle:
    """The stepwise engine of ``policy`` as a harness oracle."""
    from repro.cache.policy import stepwise_trace_misses

    def oracle(blocks: np.ndarray, point: object) -> List[bool]:
        trace = blocks.tolist() if hasattr(blocks, "tolist") else list(blocks)
        return [bool(m) for m in stepwise_trace_misses(trace, point, policy)]

    return oracle


def _describe_point(point: object) -> str:
    describe = getattr(point, "describe", None)
    return describe() if callable(describe) else repr(point)


def format_divergence(
    blocks: np.ndarray,
    point: object,
    kernel_mask: Sequence[bool],
    oracle_mask: Sequence[bool],
    index: int,
    context: int = 8,
) -> str:
    """Human-readable report of the first diverging access.

    Shows the geometry, the position, and the last ``context`` accesses
    leading up to it with both engines' verdicts — enough to replay the
    failure by hand without re-running anything.
    """
    lo = max(0, index - context)
    lines = [
        f"first divergence at access {index} (block {int(blocks[index])}) "
        f"on {_describe_point(point)}:",
        f"  kernel says {'MISS' if kernel_mask[index] else 'HIT'}, "
        f"oracle says {'MISS' if oracle_mask[index] else 'HIT'}",
        f"  trailing window [{lo}:{index + 1}] (pos: block kernel/oracle):",
    ]
    for i in range(lo, index + 1):
        k = "M" if kernel_mask[i] else "h"
        o = "M" if oracle_mask[i] else "h"
        marker = "  <-- diverges" if i == index else ""
        lines.append(f"    {i:>8d}: {int(blocks[i]):>8d}  {k}/{o}{marker}")
    return "\n".join(lines)


def _check_masks(
    blocks: np.ndarray,
    points: Sequence,
    kernel_masks: Sequence,
    oracle_masks: Sequence[List[bool]],
    context: int,
    label: str,
) -> None:
    if len(kernel_masks) != len(points):
        raise AssertionError(
            f"{label}kernel answered {len(kernel_masks)} masks for "
            f"{len(points)} grid points"
        )
    n = blocks.shape[0]
    for point, kmask, olist in zip(points, kernel_masks, oracle_masks):
        klist = [bool(b) for b in (kmask.tolist() if hasattr(kmask, "tolist") else kmask)]
        if len(klist) != n or len(olist) != n:
            raise AssertionError(
                f"{label}mask length mismatch on {_describe_point(point)}: "
                f"kernel {len(klist)}, oracle {len(olist)}, trace {n}"
            )
        if klist != olist:
            index = next(i for i, (a, b) in enumerate(zip(klist, olist)) if a != b)
            raise AssertionError(
                label + format_divergence(blocks, point, klist, olist, index, context)
            )


def differential_grid(
    kernel: Kernel,
    oracle: Oracle,
    grids: Iterable,
    workload: Sequence[int],
    context: int = 8,
    chunk_sizes: Sequence[int] = (),
) -> int:
    """Assert per-access agreement of ``kernel`` and ``oracle`` over a grid.

    ``workload`` is a block trace (any integer sequence); ``grids`` the
    sweep points (geometries, hierarchy pairs, ...).  The kernel is invoked
    once with the whole grid — exactly the production sweep shape — and the
    oracle once per point.  Lengths must match the trace, and every access's
    verdict must be identical; the first divergence raises an
    ``AssertionError`` carrying :func:`format_divergence` output.

    ``chunk_sizes`` adds a streaming axis: for each size ``s`` the kernel
    is re-invoked as ``kernel(blocks, points, chunk_words=s)`` (the
    :func:`replay_kernel` adapter routes that through the out-of-core
    engine) and the masks must again match the oracle bit for bit — the
    oracle runs once per point and pins every chunking.  Divergence
    messages from a streaming pass are prefixed ``[chunk_words=s]``.

    Returns the number of (point, engine) comparisons made —
    ``len(points) * (1 + len(chunk_sizes))`` — useful for asserting a
    suite really covered its promised ≥N-point grid.
    """
    blocks = np.ascontiguousarray(np.asarray(workload, dtype=np.int64))
    points = list(grids)
    sizes = list(chunk_sizes)
    oracle_masks = [[bool(m) for m in oracle(blocks, point)] for point in points]
    kernel_masks = kernel(blocks, points)
    _check_masks(blocks, points, kernel_masks, oracle_masks, context, "")
    for s in sizes:
        chunked = kernel(blocks, points, chunk_words=s)  # type: ignore[call-arg]
        _check_masks(
            blocks, points, chunked, oracle_masks, context, f"[chunk_words={s}] "
        )
    return len(points) * (1 + len(sizes))
