"""Testing substrate: hypothesis strategies for random stream graphs /
geometries / placements, independent reference implementations (oracles)
used by differential tests, and the reusable differential-grid harness
that diffs a vectorized kernel against its stepwise oracle per access.

Exposed as a public subpackage so downstream users extending the library
(new schedulers, new partitioners, new cache models, new replay kernels)
can reuse the same generators, oracles, and harness to validate their code
against the reference semantics."""

from repro.testing.harness import (
    differential_grid,
    format_divergence,
    replay_kernel,
    stepwise_oracle,
)
from repro.testing.oracles import (
    NaiveLRU,
    bruteforce_pipeline_partition,
    reference_token_replay,
)
from repro.testing.strategies import (
    geometry_strategy,
    placement_strategy,
    rate_matched_pipelines,
    small_dags,
)

__all__ = [
    "NaiveLRU",
    "bruteforce_pipeline_partition",
    "differential_grid",
    "format_divergence",
    "geometry_strategy",
    "placement_strategy",
    "rate_matched_pipelines",
    "reference_token_replay",
    "replay_kernel",
    "small_dags",
    "stepwise_oracle",
]
