"""Testing substrate: hypothesis strategies for random stream graphs and
independent reference implementations (oracles) used by differential tests.

Exposed as a public subpackage so downstream users extending the library
(new schedulers, new partitioners, new cache models) can reuse the same
generators and oracles to validate their code against the reference
semantics."""

from repro.testing.oracles import (
    NaiveLRU,
    bruteforce_pipeline_partition,
    reference_token_replay,
)
from repro.testing.strategies import rate_matched_pipelines, small_dags

__all__ = [
    "NaiveLRU",
    "bruteforce_pipeline_partition",
    "reference_token_replay",
    "rate_matched_pipelines",
    "small_dags",
]
