"""Hypothesis strategies for random stream graphs.

Centralized here so every property-based test draws from the same
distributions, and so extensions can reuse them.  All strategies emit
graphs satisfying the paper's Section-2 assumptions (dag, rate matched,
single source/sink) by construction.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import pipeline

__all__ = ["rate_matched_pipelines", "small_dags"]

_rates = st.tuples(st.integers(1, 5), st.integers(1, 5))


@st.composite
def rate_matched_pipelines(draw, max_n: int = 10, max_state: int = 30, with_delays: bool = False):
    """Random pipelines: arbitrary states, arbitrary per-edge rates (always
    rate matched on a chain), optionally with small SDF delays."""
    n = draw(st.integers(2, max_n))
    states = draw(st.lists(st.integers(0, max_state), min_size=n, max_size=n))
    rs = draw(st.lists(_rates, min_size=n - 1, max_size=n - 1))
    g = pipeline(states, rs)
    if with_delays:
        delays = draw(st.lists(st.integers(0, 4), min_size=n - 1, max_size=n - 1))
        g2 = StreamGraph(g.name)
        for m in g.modules():
            g2.add_module(m.name, state=m.state, work=m.work)
        for ch, d in zip(g.channels(), delays):
            g2.add_channel(ch.src, ch.dst, out_rate=ch.out_rate, in_rate=ch.in_rate, delay=d)
        return g2
    return g


@st.composite
def small_dags(draw, max_layers: int = 4, max_width: int = 3, max_state: int = 20):
    """Random homogeneous layered dags, small enough for exact partition
    search: a single source/sink, every layer fully reachable."""
    layers = draw(st.integers(1, max_layers))
    width = draw(st.integers(1, max_width))
    g = StreamGraph("hyp-dag")
    g.add_module("src", state=draw(st.integers(0, max_state)))
    prev = ["src"]
    for layer in range(layers):
        cur = []
        for w in range(width):
            name = f"n{layer}_{w}"
            g.add_module(name, state=draw(st.integers(1, max_state)))
            cur.append(name)
        # each node gets >= 1 parent from prev; each prev node >= 1 child
        used = set()
        for name in cur:
            parents = draw(
                st.lists(st.sampled_from(prev), min_size=1, max_size=len(prev), unique=True)
            )
            for p in parents:
                g.add_channel(p, name)
                used.add(p)
        for p in prev:
            if p not in used:
                g.add_channel(p, draw(st.sampled_from(cur)))
        prev = cur
    g.add_module("snk", state=draw(st.integers(0, max_state)))
    for p in prev:
        g.add_channel(p, "snk")
    return g
