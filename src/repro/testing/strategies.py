"""Hypothesis strategies for random stream graphs, cache geometries, and
placements.

Centralized here so every property-based test draws from the same
distributions, and so extensions can reuse them.  The graph strategies emit
graphs satisfying the paper's Section-2 assumptions (dag, rate matched,
single source/sink) by construction; :func:`geometry_strategy` emits only
organizations :class:`~repro.cache.base.CacheGeometry` validation accepts
(power-of-two set counts, both index schemes), and
:func:`placement_strategy` emits (order, gaps) candidates inside a given
address-space gap budget — the exact search space
:mod:`repro.mem.placement` explores; and :func:`chunking_strategy` emits
arbitrary partitions of a trace into positive chunk sizes — the adversary
for the streaming-replay invariance properties.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import pipeline
from repro.mem.layout import ObjectKey

__all__ = [
    "rate_matched_pipelines",
    "small_dags",
    "geometry_strategy",
    "placement_strategy",
    "chunking_strategy",
]

_rates = st.tuples(st.integers(1, 5), st.integers(1, 5))


@st.composite
def rate_matched_pipelines(
    draw: st.DrawFn, max_n: int = 10, max_state: int = 30,
    with_delays: bool = False,
) -> StreamGraph:
    """Random pipelines: arbitrary states, arbitrary per-edge rates (always
    rate matched on a chain), optionally with small SDF delays."""
    n = draw(st.integers(2, max_n))
    states = draw(st.lists(st.integers(0, max_state), min_size=n, max_size=n))
    rs = draw(st.lists(_rates, min_size=n - 1, max_size=n - 1))
    g = pipeline(states, rs)
    if with_delays:
        delays = draw(st.lists(st.integers(0, 4), min_size=n - 1, max_size=n - 1))
        g2 = StreamGraph(g.name)
        for m in g.modules():
            g2.add_module(m.name, state=m.state, work=m.work)
        for ch, d in zip(g.channels(), delays):
            g2.add_channel(ch.src, ch.dst, out_rate=ch.out_rate, in_rate=ch.in_rate, delay=d)
        return g2
    return g


@st.composite
def geometry_strategy(
    draw: st.DrawFn,
    block: int = 8,
    max_ways: int = 8,
    max_sets: int = 32,
    schemes: Sequence[str] = ("mod", "xor"),
    allow_fully_associative: bool = True,
) -> CacheGeometry:
    """Random *valid* cache organizations: ``ways`` from 1 up to
    ``max_ways``, a power-of-two set count up to ``max_sets`` (what
    geometry validation demands), either index scheme, and — when allowed —
    fully-associative geometries with power-of-two frame counts so the
    ``"xor"`` scheme stays legal in its direct-mapped reading."""
    scheme = draw(st.sampled_from(list(schemes)))
    sets_choices = [s for s in (1, 2, 4, 8, 16, 32) if s <= max_sets]
    ways_choices = [w for w in (1, 2, 4, 8) if w <= max_ways]
    if allow_fully_associative and draw(st.booleans()):
        frames = draw(st.sampled_from(sets_choices))
        return CacheGeometry(size=frames * block, block=block, index_scheme=scheme)
    ways = draw(st.sampled_from(ways_choices))
    sets = draw(st.sampled_from(sets_choices))
    return CacheGeometry(
        size=sets * ways * block, block=block, ways=ways, index_scheme=scheme
    )


@st.composite
def placement_strategy(
    draw: st.DrawFn, objects: Iterable[ObjectKey], max_gap: int = 3,
    gap_budget: Optional[int] = None,
) -> Tuple[List[ObjectKey], Dict[ObjectKey, int]]:
    """Random placement candidates over ``objects``: a permutation plus a
    per-object gap map (blocks of deliberate padding, each at most
    ``max_gap``), truncated so the total never exceeds ``gap_budget`` when
    one is given.  Returns ``(order, gaps)`` ready for
    :func:`repro.mem.placement.remap_blocks` or
    :meth:`repro.mem.layout.MemoryLayout.place_graph`."""
    objects = list(objects)
    order = draw(st.permutations(objects))
    gap_list = draw(
        st.lists(
            st.integers(0, max_gap), min_size=len(objects), max_size=len(objects)
        )
    )
    gaps: Dict[ObjectKey, int] = {}
    spent = 0
    for key, gap in zip(order, gap_list):
        if gap_budget is not None:
            gap = min(gap, gap_budget - spent)
        if gap > 0:
            gaps[key] = gap
            spent += gap
    return list(order), gaps


@st.composite
def chunking_strategy(draw: st.DrawFn, n: int) -> List[int]:
    """Random partition of a length-``n`` trace into positive chunk sizes.

    Draws a set of cut points in ``[1, n-1]`` and returns the consecutive
    differences, so every partition of ``n`` — from ``[n]`` (no cuts) to
    ``[1] * n`` (all cuts) — is reachable and the sizes always sum to
    ``n``.  This is the adversary for the streaming-replay invariance
    properties: miss counts (and carry-over state) must not depend on
    where the chunk boundaries fall.
    """
    if n < 1:
        raise ValueError(f"chunking_strategy needs n >= 1, got {n}")
    if n == 1:
        return [1]
    cuts = sorted(draw(st.sets(st.integers(1, n - 1), max_size=n - 1)))
    bounds = [0] + cuts + [n]
    return [hi - lo for lo, hi in zip(bounds[:-1], bounds[1:])]


@st.composite
def small_dags(
    draw: st.DrawFn, max_layers: int = 4, max_width: int = 3,
    max_state: int = 20,
) -> StreamGraph:
    """Random homogeneous layered dags, small enough for exact partition
    search: a single source/sink, every layer fully reachable."""
    layers = draw(st.integers(1, max_layers))
    width = draw(st.integers(1, max_width))
    g = StreamGraph("hyp-dag")
    g.add_module("src", state=draw(st.integers(0, max_state)))
    prev = ["src"]
    for layer in range(layers):
        cur = []
        for w in range(width):
            name = f"n{layer}_{w}"
            g.add_module(name, state=draw(st.integers(1, max_state)))
            cur.append(name)
        # each node gets >= 1 parent from prev; each prev node >= 1 child
        used = set()
        for name in cur:
            parents = draw(
                st.lists(st.sampled_from(prev), min_size=1, max_size=len(prev), unique=True)
            )
            for p in parents:
                g.add_channel(p, name)
                used.add(p)
        for p in prev:
            if p not in used:
                g.add_channel(p, draw(st.sampled_from(cur)))
        prev = cur
    g.add_module("snk", state=draw(st.integers(0, max_state)))
    for p in prev:
        g.add_channel(p, "snk")
    return g
