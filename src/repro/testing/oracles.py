"""Reference implementations used as differential-test oracles.

Each oracle is written for obviousness, not speed, with different data
structures than the production code so shared bugs are unlikely:

* :class:`NaiveLRU` — LRU over a plain Python list (O(n) per access);
* :func:`bruteforce_pipeline_partition` — all 2^(n-1) segmentations;
* :func:`reference_token_replay` — schedule feasibility by dict-of-lists
  token simulation (tokens as individual objects, not counters), also
  checking FIFO order end to end;
* :func:`reference_stack_distances` — the sequential Fenwick-tree stack
  distance algorithm, checking the vectorized numpy kernel in
  :mod:`repro.analysis.misscurve`;
* :func:`assert_trace_equivalent` — the compiled-trace engine
  (:mod:`repro.runtime.compiled`) against the stepwise
  :class:`~repro.runtime.executor.Executor` + :class:`~repro.cache.lru.LRUCache`,
  block-for-block and miss-for-miss across cache geometries.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.repetition import compute_gains
from repro.graphs.sdf import StreamGraph
from repro.runtime.schedule import Schedule

__all__ = [
    "NaiveLRU",
    "bruteforce_pipeline_partition",
    "reference_token_replay",
    "reference_stack_distances",
    "assert_trace_equivalent",
]


class NaiveLRU:
    """List-based LRU: index 0 = most recent.  O(n) per access, obviously
    correct; differential tests compare it block-for-block with the
    production OrderedDict implementation."""

    def __init__(self, capacity_blocks: int) -> None:
        self.capacity = capacity_blocks
        self.stack: List[int] = []
        self.misses = 0
        self.accesses = 0

    def access(self, block: int) -> bool:
        self.accesses += 1
        if block in self.stack:
            self.stack.remove(block)
            self.stack.insert(0, block)
            return False
        self.misses += 1
        self.stack.insert(0, block)
        if len(self.stack) > self.capacity:
            self.stack.pop()
        return True


class _Fenwick:
    """Prefix-sum tree over trace positions (1-based internally)."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s

    def range_sum(self, lo: int, hi: int) -> int:
        if hi < lo:
            return 0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0)


def reference_stack_distances(trace: Sequence[int]) -> List[Optional[int]]:
    """Sequential Mattson stack distances; ``None`` marks cold accesses.

    The classic last-access dict + Fenwick tree over "most recent for their
    block" positions — O(n log n), one access at a time.  This was the
    production algorithm before the vectorized kernel in
    :mod:`repro.analysis.misscurve` replaced it; it stays here as the
    differential oracle for that kernel.
    """
    n = len(trace)
    fen = _Fenwick(n)
    last: Dict[int, int] = {}
    out: List[Optional[int]] = [None] * n
    for i, blk in enumerate(trace):
        prev = last.get(blk)
        if prev is not None:
            # distinct blocks touched in (prev, i) = marked positions there,
            # plus this block itself
            out[i] = fen.range_sum(prev + 1, i - 1) + 1
            fen.add(prev, -1)
        fen.add(i, 1)
        last[blk] = i
    return out


def bruteforce_pipeline_partition(
    graph: StreamGraph, cache_size: int, c: float
) -> Optional[Fraction]:
    """Minimum bandwidth over ALL segmentations of a pipeline (2^(n-1)
    candidates), or None when no c-bounded segmentation exists.  Exponential;
    n <= ~14 only."""
    order = graph.pipeline_order()
    n = len(order)
    states = [graph.state(name) for name in order]
    gains = compute_gains(graph)
    chans = []
    for a, b in zip(order, order[1:]):
        chans.append(graph.channels_between(a, b)[0])
    bound = c * cache_size

    best: Optional[Fraction] = None
    for cuts in product([0, 1], repeat=n - 1):
        bw = Fraction(0)
        acc = states[0]
        feasible = True
        for i, cut in enumerate(cuts):
            if cut:
                if acc > bound:  # the segment being closed must fit
                    feasible = False
                    break
                bw += gains.edge_gain(chans[i].cid)
                acc = 0
            acc += states[i + 1]
        if acc > bound:  # the final segment must fit too
            feasible = False
        if feasible and (best is None or bw < best):
            best = bw
    return best


def assert_trace_equivalent(
    graph: StreamGraph,
    schedule: Schedule,
    block: int,
    sizes: Iterable[int],
    layout_order: Optional[Iterable[str]] = None,
    count_external: bool = True,
) -> None:
    """Differential oracle for the compiled-trace engine.

    Runs the schedule twice per call: once through the stepwise
    :class:`~repro.runtime.executor.Executor` with a tracing LRU cache, and
    once through :func:`repro.runtime.compiled.compile_trace`.  Asserts

    1. the two block traces are identical, element for element;
    2. for every cache size in ``sizes`` (words, multiples of ``block``),
       the vectorized :func:`~repro.runtime.compiled.simulate_trace` result
       equals a fresh per-geometry LRU run — misses, accesses, phase
       attribution, and firing accounting.

    Returns the compiled trace so callers can make further assertions.
    """
    from repro.cache.base import CacheGeometry
    from repro.cache.lru import LRUCache
    from repro.mem.trace import TraceRecorder, TracingCache
    from repro.runtime.compiled import compile_trace, simulate_trace
    from repro.runtime.executor import Executor

    sizes = list(sizes)
    if not sizes:
        raise ValueError("need at least one cache size to compare")

    trace = compile_trace(
        graph,
        schedule,
        block,
        layout_order=layout_order,
        count_external=count_external,
    )

    # 1. block-for-block trace equality against the recording executor
    big = CacheGeometry(size=max(sizes) * 4, block=block)
    recorder = TraceRecorder()
    rec_res = Executor.measure(
        graph,
        big,
        schedule,
        layout_order=layout_order,
        count_external=count_external,
        cache=TracingCache(LRUCache(big), recorder),
    )
    assert trace.blocks.tolist() == recorder.blocks, (
        f"compiled trace diverges from executor trace "
        f"({trace.accesses} vs {len(recorder.blocks)} touches)"
    )
    assert trace.firings == rec_res.firings
    assert trace.fire_counts == rec_res.fire_counts
    assert trace.source_fires == rec_res.source_fires
    assert trace.sink_fires == rec_res.sink_fires

    # 2. per-geometry miss equality against fresh stepwise LRU runs
    geometries = [CacheGeometry(size=s, block=block) for s in sizes]
    fast = simulate_trace(trace, geometries)
    for geom, fast_res in zip(geometries, fast):
        ref = Executor.measure(
            graph,
            geom,
            schedule,
            layout_order=layout_order,
            count_external=count_external,
        )
        assert fast_res.misses == ref.misses, (
            f"size {geom.size}: compiled {fast_res.misses} != stepwise {ref.misses}"
        )
        assert fast_res.accesses == ref.accesses
        assert fast_res.phase_misses == ref.phase_misses, (
            f"size {geom.size}: phase attribution diverged "
            f"({fast_res.phase_misses} vs {ref.phase_misses})"
        )
        assert fast_res.source_fires == ref.source_fires
    return trace


def reference_token_replay(
    graph: StreamGraph,
    firings: Sequence[str],
    capacities: Optional[Dict[int, int]] = None,
) -> Tuple[bool, Dict[int, int]]:
    """Token-object replay of a schedule.

    Each token is an integer sequence number per channel; the replay checks
    (a) feasibility (enough tokens to pop, enough room to push) and (b) that
    tokens are consumed in exactly the order produced (FIFO).  Returns
    (feasible, final occupancies); feasibility failure returns (False, ...)
    rather than raising so hypothesis can compare against the production
    validator's raise/no-raise behaviour.
    """
    caps = capacities or {}
    queues: Dict[int, List[int]] = {ch.cid: list(range(ch.delay)) for ch in graph.channels()}
    next_seq: Dict[int, int] = {ch.cid: ch.delay for ch in graph.channels()}
    expected_pop: Dict[int, int] = {ch.cid: 0 for ch in graph.channels()}

    for name in firings:
        in_chs = graph.in_channels(name)
        out_chs = graph.out_channels(name)
        if any(len(queues[ch.cid]) < ch.in_rate for ch in in_chs):
            return False, {cid: len(q) for cid, q in queues.items()}
        for ch in out_chs:
            cap = caps.get(ch.cid)
            if cap is not None and len(queues[ch.cid]) + ch.out_rate > cap:
                return False, {cid: len(q) for cid, q in queues.items()}
        for ch in in_chs:
            for _ in range(ch.in_rate):
                tok = queues[ch.cid].pop(0)
                assert tok == expected_pop[ch.cid], "FIFO order violated"
                expected_pop[ch.cid] += 1
        for ch in out_chs:
            for _ in range(ch.out_rate):
                queues[ch.cid].append(next_seq[ch.cid])
                next_seq[ch.cid] += 1
    return True, {cid: len(q) for cid, q in queues.items()}
