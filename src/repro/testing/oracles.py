"""Reference implementations used as differential-test oracles.

Each oracle is written for obviousness, not speed, with different data
structures than the production code so shared bugs are unlikely:

* :class:`NaiveLRU` — LRU over a plain Python list (O(n) per access);
* :func:`bruteforce_pipeline_partition` — all 2^(n-1) segmentations;
* :func:`reference_token_replay` — schedule feasibility by dict-of-lists
  token simulation (tokens as individual objects, not counters), also
  checking FIFO order end to end.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.repetition import compute_gains
from repro.graphs.sdf import StreamGraph

__all__ = ["NaiveLRU", "bruteforce_pipeline_partition", "reference_token_replay"]


class NaiveLRU:
    """List-based LRU: index 0 = most recent.  O(n) per access, obviously
    correct; differential tests compare it block-for-block with the
    production OrderedDict implementation."""

    def __init__(self, capacity_blocks: int) -> None:
        self.capacity = capacity_blocks
        self.stack: List[int] = []
        self.misses = 0
        self.accesses = 0

    def access(self, block: int) -> bool:
        self.accesses += 1
        if block in self.stack:
            self.stack.remove(block)
            self.stack.insert(0, block)
            return False
        self.misses += 1
        self.stack.insert(0, block)
        if len(self.stack) > self.capacity:
            self.stack.pop()
        return True


def bruteforce_pipeline_partition(
    graph: StreamGraph, cache_size: int, c: float
) -> Optional[Fraction]:
    """Minimum bandwidth over ALL segmentations of a pipeline (2^(n-1)
    candidates), or None when no c-bounded segmentation exists.  Exponential;
    n <= ~14 only."""
    order = graph.pipeline_order()
    n = len(order)
    states = [graph.state(name) for name in order]
    gains = compute_gains(graph)
    chans = []
    for a, b in zip(order, order[1:]):
        chans.append(graph.channels_between(a, b)[0])
    bound = c * cache_size

    best: Optional[Fraction] = None
    for cuts in product([0, 1], repeat=n - 1):
        bw = Fraction(0)
        acc = states[0]
        feasible = True
        for i, cut in enumerate(cuts):
            if cut:
                if acc > bound:  # the segment being closed must fit
                    feasible = False
                    break
                bw += gains.edge_gain(chans[i].cid)
                acc = 0
            acc += states[i + 1]
        if acc > bound:  # the final segment must fit too
            feasible = False
        if feasible and (best is None or bw < best):
            best = bw
    return best


def reference_token_replay(
    graph: StreamGraph,
    firings: Sequence[str],
    capacities: Optional[Dict[int, int]] = None,
) -> Tuple[bool, Dict[int, int]]:
    """Token-object replay of a schedule.

    Each token is an integer sequence number per channel; the replay checks
    (a) feasibility (enough tokens to pop, enough room to push) and (b) that
    tokens are consumed in exactly the order produced (FIFO).  Returns
    (feasible, final occupancies); feasibility failure returns (False, ...)
    rather than raising so hypothesis can compare against the production
    validator's raise/no-raise behaviour.
    """
    caps = capacities or {}
    queues: Dict[int, List[int]] = {ch.cid: list(range(ch.delay)) for ch in graph.channels()}
    next_seq: Dict[int, int] = {ch.cid: ch.delay for ch in graph.channels()}
    expected_pop: Dict[int, int] = {ch.cid: 0 for ch in graph.channels()}

    for name in firings:
        in_chs = graph.in_channels(name)
        out_chs = graph.out_channels(name)
        if any(len(queues[ch.cid]) < ch.in_rate for ch in in_chs):
            return False, {cid: len(q) for cid, q in queues.items()}
        for ch in out_chs:
            cap = caps.get(ch.cid)
            if cap is not None and len(queues[ch.cid]) + ch.out_rate > cap:
                return False, {cid: len(q) for cid, q in queues.items()}
        for ch in in_chs:
            for _ in range(ch.in_rate):
                tok = queues[ch.cid].pop(0)
                assert tok == expected_pop[ch.cid], "FIFO order violated"
                expected_pop[ch.cid] += 1
        for ch in out_chs:
            for _ in range(ch.out_rate):
                queues[ch.cid].append(next_seq[ch.cid])
                next_seq[ch.cid] += 1
    return True, {cid: len(q) for cid, q in queues.items()}
