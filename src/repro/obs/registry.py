"""Thread-safe metrics registry: counters, gauges, histograms, series, spans.

One :class:`MetricsRegistry` holds every kind of measurement the
instrumentation layer produces, keyed by names from
:mod:`repro.obs.names`:

* **counters** — monotone integer sums (``add``);
* **gauges** — last-written values (``gauge``), e.g. the most recent pool
  width;
* **histograms** — ``count/total/min/max`` summaries of observed values
  (``observe``), enough for means and ranges without storing samples;
* **series** — append-only value lists (``series``), e.g. the per-round
  cost trajectory of a placement search (capped at
  :data:`SERIES_CAP` points to bound memory);
* **spans** — ``count/wall_s/cpu_s`` aggregates per span key
  (``record_span``), written by the context managers in
  :mod:`repro.obs.core`.

Everything mutates under one lock, so thread-backend workers can record
into the shared registry directly.  Process-backend workers record into a
private registry and ship a :meth:`snapshot` (a plain JSON-able dict)
back with their reduced stats; the parent folds it in with :meth:`merge`.
Merging is commutative for counters/histograms/spans and order-preserving
for series, so "serial totals == merged process totals" holds whenever
the underlying work is identical.

This module must not import numpy or any ``repro`` runtime module at load
time (lint rule R6): the registry is plain Python on purpose, so
importing it costs nothing and workers can use it before heavy modules
load.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping

__all__ = ["SERIES_CAP", "MetricsRegistry"]

#: hard cap on points retained per series (oldest kept; the trajectory's
#: head is the interesting part — budgets bound rounds long before this)
SERIES_CAP = 4096

#: snapshot type: plain dicts/lists/numbers only, safe to pickle or JSON
Snapshot = Dict[str, Dict[str, Any]]


class MetricsRegistry:
    """One process-local store for every metric kind; see module docs."""

    __slots__ = ("_lock", "_counters", "_gauges", "_hists", "_series", "_spans")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, List[float]] = {}  # [count, total, min, max]
        self._series: Dict[str, List[float]] = {}
        self._spans: Dict[str, List[float]] = {}  # [count, wall_s, cpu_s]

    # ------------------------------------------------------------ write
    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        v = float(value)
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                self._hists[name] = [1, v, v, v]
            else:
                h[0] += 1
                h[1] += v
                h[2] = min(h[2], v)
                h[3] = max(h[3], v)

    def series(self, name: str, value: float) -> None:
        """Append ``value`` to series ``name`` (bounded by SERIES_CAP)."""
        with self._lock:
            points = self._series.setdefault(name, [])
            if len(points) < SERIES_CAP:
                points.append(float(value))

    def record_span(self, key: str, wall_s: float, cpu_s: float) -> None:
        """Fold one completed span into the per-key aggregate."""
        with self._lock:
            s = self._spans.get(key)
            if s is None:
                self._spans[key] = [1, wall_s, cpu_s]
            else:
                s[0] += 1
                s[1] += wall_s
                s[2] += cpu_s

    # ------------------------------------------------------------- read
    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Snapshot:
        """A deep-copied, JSON-able view of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {"count": int(h[0]), "total": h[1], "min": h[2], "max": h[3]}
                    for name, h in self._hists.items()
                },
                "series": {name: list(v) for name, v in self._series.items()},
                "spans": {
                    key: {"count": int(s[0]), "wall_s": s[1], "cpu_s": s[2]}
                    for key, s in self._spans.items()
                },
            }

    # ------------------------------------------------------------ merge
    def merge(self, snap: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters, histograms and spans add; gauges take the snapshot's
        value (last write wins); series extend in order.  Merging worker
        deltas chunk-by-chunk in submission order therefore reproduces
        exactly what a serial run would have recorded — the property
        ``tests/test_obs.py`` pins across backends.
        """
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in snap.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, h in snap.get("histograms", {}).items():
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = [
                        int(h["count"]), float(h["total"]),
                        float(h["min"]), float(h["max"]),
                    ]
                else:
                    mine[0] += int(h["count"])
                    mine[1] += float(h["total"])
                    mine[2] = min(mine[2], float(h["min"]))
                    mine[3] = max(mine[3], float(h["max"]))
            for name, points in snap.get("series", {}).items():
                dest = self._series.setdefault(name, [])
                room = SERIES_CAP - len(dest)
                if room > 0:
                    dest.extend(float(p) for p in points[:room])
            for key, s in snap.get("spans", {}).items():
                mine = self._spans.get(key)
                if mine is None:
                    self._spans[key] = [
                        int(s["count"]), float(s["wall_s"]), float(s["cpu_s"])
                    ]
                else:
                    mine[0] += int(s["count"])
                    mine[1] += float(s["wall_s"])
                    mine[2] += float(s["cpu_s"])

    def reset(self) -> None:
        """Drop everything recorded so far."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._series.clear()
            self._spans.clear()
