"""Central registry of every span and metric name (lint rule R6).

Instrumentation drifts into uselessness when each call site invents its
own string: ``"cache_hits"`` here, ``"trace_cache.hit"`` there, and the
dashboards join on neither.  Every name used with :func:`repro.obs.span`,
:func:`repro.obs.add`, :func:`repro.obs.gauge`, :func:`repro.obs.observe`
or :func:`repro.obs.series` inside ``src/repro/`` must be one of the
module-level constants below — rule **R6** in :mod:`repro.lint.rules`
rejects free strings and dynamic names at analysis time, so the full
vocabulary of the system is always this one page.

Naming convention: ``<subsystem>.<quantity>`` for metrics, a bare phase
word (optionally dotted) for spans.  Span attributes (``policy=...``) are
folded into the aggregation key at runtime as ``name[policy=lru]`` — the
attribute *values* are data, only the base name is vocabulary.

This module must stay importable with zero heavy dependencies (no numpy,
no ``repro.runtime``) — R6 checks that too, for the whole ``repro.obs``
package.

>>> from repro.obs import names
>>> names.CACHE_HITS
'trace_cache.hits'
>>> "REPLAY" in names.registered_names()
True
"""

from __future__ import annotations

from typing import Dict

# ---------------------------------------------------------------- spans
#: whole-run span wrapped around a CLI invocation by ``capture_run``
RUN = "run"
#: one trace compilation (graph + schedule -> block trace)
COMPILE = "compile"
#: persistent-cache lookup (`TraceCache.get`)
CACHE_GET = "trace_cache.get"
#: persistent-cache store (`TraceCache.put`)
CACHE_PUT = "trace_cache.put"
#: one vectorized replay call (attr ``policy=`` names the kernel)
REPLAY = "replay"
#: one ordered map over an execution backend (attr ``backend=``)
BACKEND_MAP = "backend.map"
#: one `run_batch` front-door invocation
BATCH = "run_batch"
#: one `swap_refine` local search (attr ``batch=``)
PLACEMENT_SEARCH = "placement.search"
#: one `multiswap_refine` facility-location local search (attr ``k=``)
FACILITY_SEARCH = "placement.facility"
#: one chunked out-of-core compilation (`compile_trace_chunked`)
STREAM_COMPILE = "stream.compile"
#: one streaming replay over a chunk source (attr ``policy=``)
STREAM_REPLAY = "stream.replay"

# ------------------------------------------------------------- counters
#: traces compiled from scratch (cache misses + uncached calls)
COMPILE_CALLS = "compile.calls"
#: total accesses across all compiled traces
COMPILE_ACCESSES = "compile.accesses"
#: persistent-cache hits (mirrors ``TraceCache.counters.hits``)
CACHE_HITS = "trace_cache.hits"
#: persistent-cache misses (mirrors ``TraceCache.counters.misses``)
CACHE_MISSES = "trace_cache.misses"
#: entries evicted by the size cap (mirrors ``.counters.evictions``)
CACHE_EVICTIONS = "trace_cache.evictions"
#: corrupt entries dropped and recompiled (mirrors ``.counters.corrupt``)
CACHE_CORRUPT = "trace_cache.corrupt"
#: geometries answered by replay kernels (chunk-sum invariant)
REPLAY_GEOMETRIES = "replay.geometries"
#: total misses reported by `simulate_trace` (summed over geometries)
REPLAY_MISSES = "replay.misses"
#: queries entering `run_batch`
BATCH_QUERIES = "run_batch.queries"
#: queries whose trace an earlier query in the batch already compiled
BATCH_DEDUPED = "run_batch.deduped"
#: distinct (trace, policy) replay groups per batch
BATCH_GROUPS = "run_batch.groups"
#: items mapped across a backend by `fan_out` / `process_sweep`
BACKEND_TASKS = "backend.tasks"
#: candidate layouts scored by `swap_refine`
PLACEMENT_EVALS = "placement.evals"
#: improvement rounds taken by `swap_refine`
PLACEMENT_ROUNDS = "placement.rounds"
#: smoothed-search restarts actually run (`smoothed` strategy)
PLACEMENT_RESTARTS = "placement.restarts"
#: candidate moves rejected by the per-set capacity constraint before
#: scoring (`multiswap_refine` — pruned moves never consume evals)
PLACEMENT_PRUNED = "placement.pruned"
#: trace chunks produced by chunked compilation / consumed by replay
STREAM_CHUNKS = "stream.chunks"
#: bytes spilled to on-disk trace segments by chunked compilation
STREAM_SPILLED_BYTES = "stream.spilled_bytes"
#: segments recompiled after a corrupt/missing entry (segment granularity)
STREAM_RECOMPILED = "stream.segments_recompiled"

# --------------------------------------------------------------- gauges
#: pool width chosen by the last backend sizing decision
BACKEND_WIDTH = "backend.width"

# --------------------------------------------------------------- series
#: best cost after each `swap_refine` round (index 0 = seed cost)
PLACEMENT_COST = "placement.cost"


def registered_names() -> Dict[str, str]:
    """All registered names: ``{CONSTANT: value}`` for every module-level
    string constant above.  Lint rule R6 and the docs derive the canonical
    vocabulary from this exact mapping."""
    return {
        key: value
        for key, value in globals().items()
        if key.isupper() and isinstance(value, str)
    }
