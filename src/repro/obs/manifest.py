"""Run manifests: one JSON summary + one JSON-lines event log per run.

A *run* is one CLI invocation (``repro schedule --metrics-out m.json``)
or any scope a caller wraps in :class:`capture_run`.  While the run is
open, instrumentation is force-enabled inside an isolated
:class:`~repro.obs.core.capture` scope and every completed span streams
one line to ``<out>.events.jsonl`` (sibling of the manifest path).  On
exit the manifest is written to ``out``:

``run_id``
    ``<command>-<config_digest[:12]>`` — stable across re-runs of the
    same command with the same configuration, so ablation matrices can
    file results under reproducible keys.
``git``
    ``git describe --always --dirty --tags`` of the working tree, or
    ``"unknown"`` outside a git checkout.
``config`` / ``config_digest``
    The caller's configuration mapping and the SHA-256 of its canonical
    JSON form.
``wall_s`` / ``cpu_s``
    Whole-run totals; the per-phase breakdown lives in
    ``metrics.spans`` (the run itself is the ``run`` span).
``metrics``
    The full registry snapshot: counters, gauges, histograms, series and
    span aggregates recorded during the run — including worker deltas
    merged back from process pools.

``python -m repro obs-report manifest.json`` renders the manifest as a
per-phase time/count table (:mod:`repro.obs.report`).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, TextIO

from repro.obs import core
from repro.obs import names as obs_names

__all__ = ["config_digest", "git_describe", "capture_run"]


def config_digest(config: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of ``config``'s canonical (sorted) JSON form.

    Non-JSON values are stringified, so argparse namespaces round-trip;
    two configs digest equal exactly when their canonical forms match.
    """
    canonical = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_describe(root: Optional[Path] = None) -> str:
    """``git describe --always --dirty --tags``, or ``"unknown"``."""
    if root is None:
        root = Path(__file__).resolve().parents[3]
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    out = proc.stdout.strip()
    return out if proc.returncode == 0 and out else "unknown"


class capture_run:
    """Context manager producing a run manifest + event log; see module docs.

    Exposes ``run_id`` after enter and ``snapshot`` / ``manifest`` after
    exit.  The manifest is written even when the body raises (flagged
    ``"ok": false``), so crashed runs still leave evidence.
    """

    def __init__(
        self,
        command: str,
        config: Mapping[str, Any],
        out: "str | Path",
    ) -> None:
        self.command = command
        self.config = dict(config)
        self.out = Path(out)
        self.events_path = self.out.with_suffix(".events.jsonl")
        self.config_digest = config_digest(self.config)
        self.run_id = f"{command}-{self.config_digest[:12]}"
        self.snapshot: Optional[Dict[str, Any]] = None
        self.manifest: Optional[Dict[str, Any]] = None
        self._events: Optional[TextIO] = None

    # ------------------------------------------------------------ events
    def _emit(self, kind: str, payload: Dict[str, Any]) -> None:
        if self._events is None:  # pragma: no cover - sink after close
            return
        record = {"event": kind, "ts": time.time()}
        record.update(payload)
        self._events.write(json.dumps(record, sort_keys=True, default=str) + "\n")

    # ----------------------------------------------------------- scoping
    def __enter__(self) -> "capture_run":
        self.out.parent.mkdir(parents=True, exist_ok=True)
        self._events = self.events_path.open("w", encoding="utf-8")
        self._started = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._capture = core.capture(enabled=True)
        self._capture.__enter__()
        self._previous_sink = core.set_event_sink(self._emit)
        self._emit(
            "run_start",
            {
                "run_id": self.run_id,
                "command": self.command,
                "config_digest": self.config_digest,
            },
        )
        self._span = core.span(obs_names.RUN)
        self._span.__enter__()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        self._span.__exit__(None, None, None)
        core.set_event_sink(self._previous_sink)
        self._emit("run_end", {"run_id": self.run_id, "ok": exc_type is None})
        assert self._events is not None
        self._events.close()
        self._events = None
        self._capture.__exit__(None, None, None)
        self.snapshot = self._capture.snapshot
        self.manifest = {
            "run_id": self.run_id,
            "command": self.command,
            "git": git_describe(),
            "config_digest": self.config_digest,
            "config": self.config,
            "ok": exc_type is None,
            "started_unix": self._started,
            "wall_s": time.perf_counter() - self._wall0,
            "cpu_s": time.process_time() - self._cpu0,
            "events": self.events_path.name,
            "metrics": self.snapshot,
        }
        self.out.write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        return False
