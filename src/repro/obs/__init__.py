"""``repro.obs`` — zero-dependency observability: metrics, spans, manifests.

The instrumentation subsystem for the whole compile -> cache -> replay ->
search service path.  Three pieces:

* a thread-safe **metrics registry** (counters, gauges, histograms,
  series) — :mod:`repro.obs.registry`;
* nestable **spans** (``with obs.span("replay", policy="lru"):``) that
  aggregate wall/CPU per phase and merge across thread *and* process
  backends — :mod:`repro.obs.core`;
* **run manifests**: a JSON-lines event log plus a final JSON summary
  (stable run ID, git describe, config digest, per-phase times, metric
  snapshot) per CLI invocation — :mod:`repro.obs.manifest`, rendered by
  ``python -m repro obs-report`` (:mod:`repro.obs.report`).

Disabled by default; the disabled hot path is one boolean check per
emitter (gated <= 1.02x by the ``obs_overhead`` bench metric).  Every
name passed to an emitter must come from :mod:`repro.obs.names` — lint
rule R6 enforces the vocabulary and keeps this package free of numpy
imports at load time.

Usage (see docs/OBSERVABILITY.md for the full tour)::

    from repro import obs
    from repro.obs import names

    obs.enable()
    with obs.span(names.REPLAY, policy="lru"):
        obs.add(names.REPLAY_GEOMETRIES, 9)
    obs.snapshot()["counters"][names.REPLAY_GEOMETRIES]  # -> 9
"""

from repro.obs import names
from repro.obs.core import (
    add,
    capture,
    disable,
    enable,
    gauge,
    is_enabled,
    merge,
    observe,
    reset,
    series,
    set_event_sink,
    snapshot,
    span,
)
from repro.obs.registry import SERIES_CAP, MetricsRegistry

__all__ = [
    "names",
    "enable",
    "disable",
    "is_enabled",
    "span",
    "add",
    "gauge",
    "observe",
    "series",
    "snapshot",
    "merge",
    "reset",
    "capture",
    "set_event_sink",
    "MetricsRegistry",
    "SERIES_CAP",
]
