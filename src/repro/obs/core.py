"""Global instrumentation state: the enable switch, spans, and capture.

Observability is **off by default** and the disabled path is engineered
to cost almost nothing: every emitter checks one boolean and returns, and
:func:`span` hands back a shared no-op context manager without touching a
clock.  ``benchmarks/bench_trace_engine.py`` measures the enabled/disabled
ratio of a full geometry sweep as ``obs_overhead`` and
``check_bench_trends.py`` gates it at <= 1.02x.

When enabled (:func:`enable`), emitters record into one process-global
:class:`~repro.obs.registry.MetricsRegistry`.  Spans are nestable context
managers that aggregate wall and CPU time per key; attributes fold into
the key (``span("replay", policy="lru")`` -> ``replay[policy=lru]``), so
aggregation is flat and backend-independent — a serial sweep and a
chunked process sweep produce the same keys.

:class:`capture` swaps in a fresh registry for a scope and exposes the
scope's delta as ``.snapshot`` on exit.  That is how process-pool workers
isolate their measurements per task (the delta pickles back with the
reduced stats; the parent :func:`merge`\\ s it in submission order) and
how the CLI's run manifests scope one invocation.

An optional **event sink** (:func:`set_event_sink`) receives one
``(kind, payload)`` call per completed span — the run-manifest writer
streams these to a JSON-lines event log.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Mapping, Optional

from repro.obs.registry import MetricsRegistry

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "span",
    "add",
    "gauge",
    "observe",
    "series",
    "snapshot",
    "merge",
    "reset",
    "capture",
    "set_event_sink",
]

EventSink = Callable[[str, Dict[str, Any]], None]


class _ObsState:
    __slots__ = ("enabled", "registry", "sink")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.sink: Optional[EventSink] = None


_STATE = _ObsState()


# ---------------------------------------------------------------- switch
def enable() -> bool:
    """Turn instrumentation on; returns the previous state."""
    previous = _STATE.enabled
    _STATE.enabled = True
    return previous


def disable() -> bool:
    """Turn instrumentation off; returns the previous state."""
    previous = _STATE.enabled
    _STATE.enabled = False
    return previous


def is_enabled() -> bool:
    """Whether emitters currently record anything."""
    return _STATE.enabled


# ----------------------------------------------------------------- spans
class _NullSpan:
    """The span handed out while disabled: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: measures wall + CPU between enter and exit, then folds
    the pair into the active registry under its key and notifies the event
    sink (if one is installed)."""

    __slots__ = ("key", "_wall0", "_cpu0")

    def __init__(self, key: str) -> None:
        self.key = key

    def __enter__(self) -> "_Span":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        _STATE.registry.record_span(self.key, wall, cpu)
        if _STATE.sink is not None:
            _STATE.sink(
                "span", {"name": self.key, "wall_s": wall, "cpu_s": cpu}
            )
        return False


def _span_key(name: str, attrs: Dict[str, Any]) -> str:
    if not attrs:
        return name
    inner = ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"{name}[{inner}]"


def span(name: str, **attrs: Any) -> Any:
    """A context manager timing one phase under ``name`` (plus attrs).

    Disabled: returns a shared no-op object — no clock reads, no
    allocation beyond the kwargs dict.  Enabled: wall and CPU deltas
    aggregate under ``name[attr=value,...]`` and the event sink (if any)
    gets one ``span`` event on exit.  Nesting is just lexical: inner spans
    record under their own keys.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return _Span(_span_key(name, attrs))


# -------------------------------------------------------------- emitters
def add(name: str, value: int = 1) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Fold ``value`` into histogram ``name`` (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.observe(name, value)


def series(name: str, value: float) -> None:
    """Append ``value`` to series ``name`` (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.series(name, value)


# ------------------------------------------------------ snapshot / merge
def snapshot() -> Dict[str, Dict[str, Any]]:
    """Snapshot of the active registry (works even while disabled)."""
    return _STATE.registry.snapshot()


def merge(snap: Mapping[str, Mapping[str, Any]]) -> None:
    """Fold a worker's snapshot into the active registry (while enabled)."""
    if _STATE.enabled:
        _STATE.registry.merge(snap)


def reset() -> None:
    """Clear the active registry."""
    _STATE.registry.reset()


class capture:
    """Scope a fresh registry: ``with capture(enabled=True) as cap: ...``.

    On enter, the global registry is swapped for an empty one (and the
    enable switch forced to ``enabled`` when given); on exit both are
    restored and the scope's measurements are available as
    ``cap.snapshot`` — a plain dict that pickles across process
    boundaries.  Measurements inside the scope land *only* in the
    snapshot, never in the outer registry; callers that want them merged
    call :func:`merge` with the snapshot afterwards.
    """

    __slots__ = ("_force", "_saved", "snapshot")

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self._force = enabled
        self.snapshot: Optional[Dict[str, Dict[str, Any]]] = None

    def __enter__(self) -> "capture":
        self._saved = (_STATE.enabled, _STATE.registry)
        _STATE.registry = MetricsRegistry()
        if self._force is not None:
            _STATE.enabled = bool(self._force)
        return self

    def __exit__(self, *exc: object) -> bool:
        self.snapshot = _STATE.registry.snapshot()
        _STATE.enabled, _STATE.registry = self._saved
        return False


# ------------------------------------------------------------ event sink
def set_event_sink(sink: Optional[EventSink]) -> Optional[EventSink]:
    """Install (or clear, with ``None``) the span event sink; returns the
    previous sink so callers can restore it."""
    previous = _STATE.sink
    _STATE.sink = sink
    return previous
