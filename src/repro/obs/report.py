"""Render a run manifest as a per-phase time/count breakdown table.

``python -m repro obs-report manifest.json`` prints the output of
:func:`render_manifest`: a header line with the run's identity, a span
table sorted by wall time (the per-phase breakdown), then counters,
gauges, histograms and series summaries.  Pure string formatting — no
numpy, no runtime imports (lint rule R6 holds the whole ``repro.obs``
package to that).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

__all__ = ["render_manifest"]


def _fmt(value: float) -> str:
    return f"{value:12.4f}"


def render_manifest(manifest: Mapping[str, Any]) -> str:
    """The human-readable report for one manifest dict; see module docs."""
    metrics: Mapping[str, Any] = manifest.get("metrics") or {}
    lines: List[str] = []
    lines.append(
        f"run {manifest.get('run_id', '?')}  "
        f"git={manifest.get('git', 'unknown')}  "
        f"config={str(manifest.get('config_digest', ''))[:12]}"
    )
    wall = manifest.get("wall_s")
    cpu = manifest.get("cpu_s")
    if wall is not None and cpu is not None:
        lines.append(f"wall {wall:.4f}s  cpu {cpu:.4f}s  ok={manifest.get('ok')}")
    spans: Dict[str, Any] = dict(metrics.get("spans") or {})
    if spans:
        lines.append("")
        lines.append(f"{'phase':40s} {'count':>8s} {'wall_s':>12s} {'cpu_s':>12s}")
        lines.append(f"{'-' * 40} {'-' * 8} {'-' * 12} {'-' * 12}")
        ordered = sorted(
            spans.items(), key=lambda kv: (-float(kv[1]["wall_s"]), kv[0])
        )
        for key, agg in ordered:
            lines.append(
                f"{key:40s} {int(agg['count']):8d} "
                f"{_fmt(float(agg['wall_s']))} {_fmt(float(agg['cpu_s']))}"
            )
    counters: Dict[str, Any] = dict(metrics.get("counters") or {})
    if counters:
        lines.append("")
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:38s} {int(counters[name]):12d}")
    gauges: Dict[str, Any] = dict(metrics.get("gauges") or {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:38s} {float(gauges[name]):12g}")
    hists: Dict[str, Any] = dict(metrics.get("histograms") or {})
    if hists:
        lines.append("")
        lines.append("histograms (count/mean/min/max)")
        for name in sorted(hists):
            h = hists[name]
            count = int(h["count"])
            mean = float(h["total"]) / count if count else 0.0
            lines.append(
                f"  {name:38s} {count:8d} {mean:10.4f} "
                f"{float(h['min']):10.4f} {float(h['max']):10.4f}"
            )
    series: Dict[str, Any] = dict(metrics.get("series") or {})
    if series:
        lines.append("")
        lines.append("series (points, first -> last)")
        for name in sorted(series):
            points = list(series[name])
            if points:
                lines.append(
                    f"  {name:38s} {len(points):6d} "
                    f"{float(points[0]):.4f} -> {float(points[-1]):.4f}"
                )
            else:  # pragma: no cover - empty series are never recorded
                lines.append(f"  {name:38s} {0:6d}")
    return "\n".join(lines) + "\n"
