#!/usr/bin/env python
"""Cache design-space exploration for a beamformer workload.

A systems question the library answers directly: given a fixed streaming
application, how do cache size M, block size B, and cache organization trade
off?  We partition the beamformer for each M, schedule it, compile the
schedule to its block trace once per (M, B), and read every replacement
model off that one trace with the policy-aware replay — fully-associative
LRU (the paper's model), direct-mapped (worst-case associativity), Belady's
OPT (the omniscient bound), and a two-level hierarchy (M in front of the
O(M) execution cache) — reproducing in one script the shapes of
experiments E8 (augmentation), E9 (block size), and E12 (organization
robustness), on a wide dag where the degree-limited condition of Section 5
matters.

Run:  python examples/cache_design_space.py
"""

from repro import (
    CacheGeometry,
    TwoLevelGeometry,
    component_layout_order,
    compile_trace,
    inhomogeneous_partition_schedule,
    interval_dp_partition,
    required_geometry,
    simulate_trace,
)
from repro.analysis.report import rows_to_table
from repro.graphs.apps import beamformer


def main() -> None:
    graph = beamformer(channels=8, beams=4, taps=48)
    print(f"{graph.name}: {graph.n_modules} modules, state {graph.total_state()} words\n")

    rows = []
    for M in (128, 256, 512, 1024):
        for B in (4, 8, 16):
            geom = CacheGeometry(size=M, block=B)
            part = interval_dp_partition(graph, M, c=2.0)
            from repro.core.tuning import choose_batch

            plan = choose_batch(graph, M, cross_cids=[c.cid for c in part.cross_channels()])
            n_batches = max(2, -(-2048 // max(plan.source_fires, 1)))
            sched = inhomogeneous_partition_schedule(
                graph, part, geom, n_batches=n_batches, plan=plan
            )
            aug = required_geometry(part, geom)
            trace = compile_trace(
                graph, sched, B, layout_order=component_layout_order(part)
            )
            res = simulate_trace(trace, [aug])[0]
            dm = simulate_trace(trace, [aug], policy="direct")[0]
            opt = simulate_trace(trace, [aug], policy="opt")[0]
            # a two-level hierarchy: the nominal M in front of the O(M)
            # execution cache, counting memory transfers out of L2
            tl = simulate_trace(
                trace, [TwoLevelGeometry(geom, aug)], policy="two_level"
            )[0]
            max_deg = max(part.component_degree(i) for i in range(part.k))
            rows.append(
                {
                    "M": M,
                    "B": B,
                    "components": part.k,
                    "bandwidth": round(float(part.bandwidth()), 2),
                    "max_degree": max_deg,
                    "deg_limit_M/B": M // B,
                    "misses/input": round(res.misses_per_source_fire, 3),
                    "direct_mapped": round(dm.misses_per_source_fire, 3),
                    "opt": round(opt.misses_per_source_fire, 3),
                    "two_level": round(tl.misses_per_source_fire, 3),
                }
            )

    print(rows_to_table(rows, title="beamformer: cache design space"))
    print(
        "\nReading the table: misses/input falls with both M (fewer, larger\n"
        "components => less cross traffic) and B (every transfer moves more\n"
        "words); rows where max_degree > M/B violate the paper's degree-limited\n"
        "condition and pay extra misses for cross-buffer block churn.  The\n"
        "direct_mapped column shows the conflict-miss price of dropping\n"
        "associativity; the opt column bounds how much a smarter replacement\n"
        "policy could recover; the two_level column counts memory transfers\n"
        "once an M-word L1 filters the O(M) execution cache — all four\n"
        "columns come from the same compiled trace, no stepwise simulation\n"
        "anywhere."
    )


if __name__ == "__main__":
    main()
