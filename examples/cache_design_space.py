#!/usr/bin/env python
"""Cache design-space exploration for a beamformer workload.

A systems question the library answers directly: given a fixed streaming
application, how do cache size M and block size B trade off?  We partition
the beamformer for each M, schedule it, and sweep B — reproducing in one
script the shapes of experiments E8 (augmentation) and E9 (block size), on
a wide dag where the degree-limited condition of Section 5 matters.

Run:  python examples/cache_design_space.py
"""

from repro import (
    CacheGeometry,
    Executor,
    component_layout_order,
    inhomogeneous_partition_schedule,
    interval_dp_partition,
    required_geometry,
)
from repro.analysis.report import rows_to_table
from repro.graphs.apps import beamformer


def main() -> None:
    graph = beamformer(channels=8, beams=4, taps=48)
    print(f"{graph.name}: {graph.n_modules} modules, state {graph.total_state()} words\n")

    rows = []
    for M in (128, 256, 512, 1024):
        for B in (4, 8, 16):
            geom = CacheGeometry(size=M, block=B)
            part = interval_dp_partition(graph, M, c=2.0)
            from repro.core.tuning import choose_batch

            plan = choose_batch(graph, M, cross_cids=[c.cid for c in part.cross_channels()])
            n_batches = max(2, -(-2048 // max(plan.source_fires, 1)))
            sched = inhomogeneous_partition_schedule(
                graph, part, geom, n_batches=n_batches, plan=plan
            )
            aug = required_geometry(part, geom)
            res = Executor.measure(
                graph, aug, sched, layout_order=component_layout_order(part)
            )
            max_deg = max(part.component_degree(i) for i in range(part.k))
            rows.append(
                {
                    "M": M,
                    "B": B,
                    "components": part.k,
                    "bandwidth": round(float(part.bandwidth()), 2),
                    "max_degree": max_deg,
                    "deg_limit_M/B": M // B,
                    "misses/input": round(res.misses_per_source_fire, 3),
                }
            )

    print(rows_to_table(rows, title="beamformer: cache design space"))
    print(
        "\nReading the table: misses/input falls with both M (fewer, larger\n"
        "components => less cross traffic) and B (every transfer moves more\n"
        "words); rows where max_degree > M/B violate the paper's degree-limited\n"
        "condition and pay extra misses for cross-buffer block churn."
    )


if __name__ == "__main__":
    main()
