#!/usr/bin/env python
"""Cyclo-static dataflow: schedule a distributor/collector graph.

CSDF modules change their rates cyclically — here a distributor alternates
tokens between two worker lanes ((1,0) on one channel, (0,1) on the other)
and a collector merges them back.  The paper's machinery is stated for SDF,
so the library phase-expands the CSDF graph (each phase becomes an SDF
module carrying the full state, chained by baton edges) and everything
downstream — validation, gains, partitioning, scheduling, simulation —
works unchanged.

Run:  python examples/csdf_distributor.py
"""

from repro import (
    CacheGeometry,
    CsdfGraph,
    Executor,
    component_layout_order,
    expand_csdf,
    inhomogeneous_partition_schedule,
    interval_dp_partition,
    required_geometry,
    single_appearance_schedule,
    validate_schedule,
)
from repro.graphs.repetition import repetition_vector


def build() -> CsdfGraph:
    g = CsdfGraph("csdf-distrib")
    g.add_module("src", phases=1, state=16)
    g.add_module("dist", phases=2, state=8)
    # two heavy worker lanes with different state footprints
    g.add_module("fir_a", phases=1, state=96)
    g.add_module("fir_b", phases=1, state=96)
    g.add_module("join", phases=2, state=8)
    g.add_module("snk", phases=1, state=16)
    g.add_channel("src", "dist", out_seq=[1], in_seq=[1, 1])
    g.add_channel("dist", "fir_a", out_seq=[1, 0], in_seq=[1])
    g.add_channel("dist", "fir_b", out_seq=[0, 1], in_seq=[1])
    g.add_channel("fir_a", "join", out_seq=[1], in_seq=[1, 0])
    g.add_channel("fir_b", "join", out_seq=[1], in_seq=[0, 1])
    g.add_channel("join", "snk", out_seq=[1, 1], in_seq=[2])
    return g


def main() -> None:
    csdf = build()
    sdf, phase_map = expand_csdf(csdf)
    print(f"CSDF graph: {csdf.n_modules} modules -> expanded SDF: {sdf.n_modules} "
          f"modules ({sdf.n_channels} channels)")
    print("phase map:", {k: v for k, v in phase_map.items() if len(v) > 1})
    reps = repetition_vector(sdf)
    print("repetition vector (per cycle):",
          {n: r for n, r in reps.items() if not n.startswith('c')})

    M = 96
    geom = CacheGeometry(size=M, block=8)
    part = interval_dp_partition(sdf, M, c=2.0)
    print(f"\npartition: {part.k} components, bandwidth {float(part.bandwidth()):.2f}")
    for i in range(part.k):
        print(f"  C{i}: {list(part.components[i])}")

    sched = inhomogeneous_partition_schedule(sdf, part, geom, n_batches=4)
    validate_schedule(sdf, sched, require_drained=True)
    aug = required_geometry(part, geom)
    res = Executor.measure(sdf, aug, sched, layout_order=component_layout_order(part))
    iters = max(1, res.source_fires // reps[sdf.sources()[0]])
    base = Executor.measure(sdf, aug, single_appearance_schedule(sdf, n_iterations=iters))
    print(f"\npartitioned      : {res.summary()}")
    print(f"single-appearance: {base.summary()}")
    print(f"\nimprovement: {base.misses_per_source_fire / res.misses_per_source_fire:.1f}x")


if __name__ == "__main__":
    main()
