#!/usr/bin/env python
"""Quickstart: partition a pipeline, schedule it, and count cache misses.

This walks the full pipeline story of the paper (Section 4) in ~40 lines:

1. build a streaming pipeline whose total state exceeds the cache;
2. compute the optimal c-bounded partition (the "simple dynamic program");
3. generate the dynamic half-full/half-empty schedule (Section 3);
4. execute it through the I/O-model cache simulator;
5. compare against the naive schedule and the Theorem 3 lower bound.

Run:  python examples/quickstart.py
"""

from repro import (
    CacheGeometry,
    Executor,
    GraphBuilder,
    component_layout_order,
    interleaved_schedule,
    optimal_pipeline_partition,
    pipeline_dynamic_schedule,
    pipeline_lower_bound,
    required_geometry,
)


def main() -> None:
    # A 12-stage pipeline, 32 words of filter state per stage: 388 words
    # total against a 128-word cache -- nothing fits at once.
    graph = (
        GraphBuilder("quickstart")
        .source(state=4)
        .chain(12, state=32)
        .sink(state=0)
        .build()
    )
    geom = CacheGeometry(size=128, block=8)
    print(graph.describe())
    print()

    # Partition: minimum-bandwidth segments of state <= M (exact DP).
    part = optimal_pipeline_partition(graph, geom.size, c=1.0)
    print(part.describe())
    print()

    # Dynamic schedule: Theta(M) buffers between segments; a segment runs
    # whenever its input buffer is half full and its output half empty.
    schedule = pipeline_dynamic_schedule(graph, part, geom, target_outputs=2000)
    run_geom = required_geometry(part, geom)  # the O(M) cache of Lemma 4
    print(
        f"executing {len(schedule)} firings on a {run_geom.size}-word cache "
        f"({run_geom.size / geom.size:.1f}x augmentation, B={geom.block})"
    )
    partitioned = Executor.measure(
        graph, run_geom, schedule, layout_order=component_layout_order(part)
    )
    print("partitioned:", partitioned.summary())

    # Baseline: push each item through the whole pipeline (interpreter-style).
    naive = Executor.measure(
        graph, run_geom, interleaved_schedule(graph, n_iterations=2000)
    )
    print("naive      :", naive.summary())

    lb = pipeline_lower_bound(graph, geom.size)
    lb_misses = float(lb.misses(partitioned.source_fires, geom))
    print()
    print(f"Theorem 3 lower bound : {lb_misses:.0f} misses")
    print(f"partitioned schedule  : {partitioned.misses} misses "
          f"({partitioned.misses / lb_misses:.1f}x the bound)")
    print(f"naive schedule        : {naive.misses} misses "
          f"({naive.misses / partitioned.misses:.1f}x the partitioned cost)")


if __name__ == "__main__":
    main()
