#!/usr/bin/env python
"""Parallel dynamic scheduling: the Section 7 multiprocessor direction.

The paper's closing remark: on multiprocessors one must balance load and
cache misses *simultaneously* — the optimal uniprocessor schedule already
minimizes misses, so the question is how much parallel speedup the dynamic
component rule extracts without inflating them.

This example partitions a wide split/join dag, runs the parallel dynamic
simulation for P = 1..8 workers (each with a private cache over the shared
address space), and prints the speedup / load-balance / miss-inflation
table.  Shape to observe: speedup rises until the component dag's width is
exhausted, load balance degrades past that point, and total misses stay
within a few percent of the P=1 schedule throughout.

Run:  python examples/parallel_scaling.py
"""

from repro import (
    CacheGeometry,
    interval_dp_partition,
    parallel_dynamic_simulation,
    refine_partition,
)
from repro.analysis.report import rows_to_table
from repro.graphs.topologies import diamond


def main() -> None:
    # four parallel branches of five 24-word modules: width-4 component dag
    graph = diamond(branch_len=5, ways=4, state=24)
    geom = CacheGeometry(size=96, block=8)
    part = refine_partition(
        interval_dp_partition(graph, geom.size, c=2.0), geom.size, c=2.0
    )
    print(f"{graph.name}: {graph.n_modules} modules, state {graph.total_state()} words")
    print(f"partition: {part.k} components, bandwidth {float(part.bandwidth()):.1f}\n")

    rows = []
    base = None
    for p in (1, 2, 3, 4, 6, 8):
        res = parallel_dynamic_simulation(
            graph, part, geom, n_workers=p, target_outputs=2048
        )
        if base is None:
            base = res.total_misses
        rows.append(
            {
                "P": p,
                "makespan": res.makespan,
                "speedup": round(res.speedup, 2),
                "load_balance": round(res.load_balance, 2),
                "total_misses": res.total_misses,
                "miss_inflation": round(res.total_misses / base, 2),
            }
        )
    print(rows_to_table(rows, title="parallel dynamic scheduling (private caches)"))
    print(
        "\nSpeedup saturates at the component dag's width; miss inflation\n"
        "stays near 1.0 — cache efficiency survives parallelization, the\n"
        "load-balancing tension the paper's Section 7 describes."
    )


if __name__ == "__main__":
    main()
