#!/usr/bin/env python
"""Multirate filter bank: inhomogeneous scheduling at T granularity.

The filter bank decimates each branch 8:1 and expands it back — module
firing rates differ by 8x across the graph, so the homogeneous T=M batching
of Section 3 does not apply.  This example shows the machinery the paper
prescribes instead:

* exact rational gains (Definition 1) and the repetition vector;
* the batch plan: the smallest T with T*gain(e) integral, divisible by the
  end rates, and >= M on the cross edges;
* per-component low-level schedules with minBuf internal buffers;
* validation that the generated schedule is feasible and drains completely.

Run:  python examples/filterbank_multirate.py
"""

from fractions import Fraction

from repro import (
    CacheGeometry,
    Executor,
    component_layout_order,
    compute_gains,
    inhomogeneous_partition_schedule,
    interval_dp_partition,
    repetition_vector,
    required_geometry,
    single_appearance_schedule,
    validate_schedule,
)
from repro.core.tuning import choose_batch
from repro.graphs.apps import filter_bank


def main() -> None:
    graph = filter_bank(branches=8, taps=32)
    geom = CacheGeometry(size=256, block=8)
    print(f"{graph.name}: {graph.n_modules} modules, state {graph.total_state()} words")

    gains = compute_gains(graph)
    reps = repetition_vector(graph)
    print("\nper-module gains (tokens of work per input sample):")
    for name in ("src", "analysis0", "down0", "proc0", "up0", "synth0", "combine"):
        print(f"  {name:10s} gain={gains.gain(name)!s:>6}  r={reps[name]}")

    part = interval_dp_partition(graph, geom.size, c=2.0)
    cross = [c.cid for c in part.cross_channels()]
    plan = choose_batch(graph, geom.size, cross_cids=cross)
    print(f"\npartition: {part.k} components, bandwidth {float(part.bandwidth()):.3f}")
    print(f"batch plan: k={plan.k} iterations/batch, T={plan.source_fires} source fires")
    print("cross-edge batch traffic (== buffer capacity):")
    for ch in part.cross_channels():
        print(
            f"  {ch.src:>9s} -> {ch.dst:<9s} {plan.channel_tokens[ch.cid]:6d} tokens"
            f"  (gain {gains.edge_gain(ch.cid)!s})"
        )

    sched = inhomogeneous_partition_schedule(graph, part, geom, n_batches=4, plan=plan)
    validate_schedule(graph, sched, require_drained=True)
    print(f"\nschedule: {len(sched)} firings, validated feasible and fully drained")

    aug = required_geometry(part, geom)
    res = Executor.measure(graph, aug, sched, layout_order=component_layout_order(part))
    iters = max(1, res.source_fires // reps["src"])
    base = Executor.measure(graph, aug, single_appearance_schedule(graph, n_iterations=iters))
    print(f"\npartitioned      : {res.summary()}")
    print(f"single-appearance: {base.summary()}")
    print(
        f"\nimprovement: {base.misses_per_source_fire / res.misses_per_source_fire:.1f}x "
        f"fewer misses per input"
    )


if __name__ == "__main__":
    main()
