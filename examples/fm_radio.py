#!/usr/bin/env python
"""FM radio: schedule a real application graph every way and compare.

The FM-radio benchmark (StreamIt's canonical demo) is a demodulator feeding
a multi-band equalizer: 20+ modules, about 1000 words of filter state.  On a
256-word cache no naive execution keeps its working set resident.  This
example runs the paper's partitioned scheduler against three practical
baselines and prints the resulting table — a single-application slice of
experiment E7.

Run:  python examples/fm_radio.py
"""

from repro import (
    CacheGeometry,
    Executor,
    component_layout_order,
    inhomogeneous_partition_schedule,
    interleaved_schedule,
    interval_dp_partition,
    refine_partition,
    repetition_vector,
    required_geometry,
    sermulins_scaled_schedule,
    single_appearance_schedule,
)
from repro.analysis.report import rows_to_table
from repro.core.tuning import choose_batch
from repro.graphs.apps import fm_radio


def main() -> None:
    graph = fm_radio(taps=64, bands=8)
    geom = CacheGeometry(size=256, block=8)
    print(f"{graph.name}: {graph.n_modules} modules, "
          f"{graph.total_state()} words of state vs M={geom.size}")

    # Partition with the interval DP over a topological order, then polish
    # with local moves.
    part = refine_partition(
        interval_dp_partition(graph, geom.size, c=2.0), geom.size, c=2.0
    )
    print(f"partition: {part.k} components, bandwidth {float(part.bandwidth()):.2f} "
          f"tokens/input")

    plan = choose_batch(graph, geom.size, cross_cids=[c.cid for c in part.cross_channels()])
    sched = inhomogeneous_partition_schedule(
        graph, part, geom, n_batches=max(2, 2048 // max(plan.source_fires, 1)), plan=plan
    )
    aug = required_geometry(part, geom)
    res = Executor.measure(graph, aug, sched, layout_order=component_layout_order(part))

    reps = repetition_vector(graph)
    iters = max(1, res.source_fires // reps[graph.sources()[0]])
    rows = [
        {
            "scheduler": "partitioned (this paper)",
            "misses": res.misses,
            "misses/input": round(res.misses_per_source_fire, 3),
        }
    ]
    for label, schedule in (
        ("single-appearance", single_appearance_schedule(graph, n_iterations=iters)),
        ("sermulins-scaled", sermulins_scaled_schedule(graph, geom, n_macro_iterations=iters)),
        ("interleaved", interleaved_schedule(graph, n_iterations=min(iters, 256))),
    ):
        r = Executor.measure(graph, aug, schedule)
        rows.append(
            {
                "scheduler": label,
                "misses": r.misses,
                "misses/input": round(r.misses_per_source_fire, 3),
            }
        )

    print()
    print(rows_to_table(rows, title=f"FM radio on a {aug.size}-word cache (B=8)"))
    best_baseline = min(r["misses/input"] for r in rows[1:])
    print()
    print(f"partitioning wins by {best_baseline / rows[0]['misses/input']:.1f}x "
          f"over the best baseline")


if __name__ == "__main__":
    main()
