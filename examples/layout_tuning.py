#!/usr/bin/env python
"""Layout tuning walkthrough: conflict-aware placement for low associativity.

The paper's fully-associative model provably cannot see memory layout (only
the *set* of blocks touched matters), but real low-associativity caches can:
two hot objects whose addresses collide modulo the set count thrash each
other no matter how good the schedule is.  This walkthrough takes the DES
pipeline, partitions and schedules it the paper's way, then uses
``repro.mem.placement`` to re-place module state and channel buffers against
the direct-mapped execution geometry:

1. compile the schedule ONCE under the seed topological layout;
2. extract the temporal-affinity conflict graph (objects co-scheduled
   within a short reuse window must not share a set);
3. score candidate placements with the exact block-remap cost model — a
   single gather over the compiled trace, never a re-execution;
4. run both strategies (greedy set-coloring, then FLIP-style swap
   refinement) and verify the win end to end by recompiling under the
   optimized placement and replaying every organization.

Run:  python examples/layout_tuning.py
"""

from repro import compile_trace, simulate_trace
from repro.analysis.report import rows_to_table
from repro.analysis.sweeps import des_partitioned_workload
from repro.mem.placement import (
    build_instance,
    conflict_graph,
    optimize_instance,
)


def main() -> None:
    M, B = 256, 8
    graph, sched, part, run_geom = des_partitioned_workload(M=M, B=B, inputs=512)
    print(
        f"{graph.name}: {graph.n_modules} modules, partitioned into {part.k} "
        f"components; execution cache {run_geom.size} words "
        f"({run_geom.n_blocks} direct-mapped frames)\n"
    )

    # one compile under the seed layout is all the optimizer ever needs
    instance = build_instance(graph, sched, B)
    edges = conflict_graph(instance)
    hot = sorted(edges.items(), key=lambda kv: -kv[1])[:3]
    print(f"conflict graph: {instance.n_objects} objects, {len(edges)} edges; hottest pairs:")
    for (a, b), w in hot:
        print(f"  {instance.objects[a]} <-> {instance.objects[b]}  weight {w:.0f}")
    print()

    rows = []
    for strategy in ("topo", "color", "swap"):
        res = optimize_instance(instance, run_geom, strategy=strategy, policy="direct")
        # verify end to end: recompile under the placement, replay everything
        trace = compile_trace(graph, sched, B, placement=res.order)
        dm = simulate_trace(trace, [run_geom], policy="direct")[0]
        fa = simulate_trace(trace, [run_geom], policy="lru")[0]
        assert dm.misses == res.cost, "cost model must match the real compile"
        rows.append(
            {
                "placement": strategy,
                "direct_misses": dm.misses,
                "vs_seed": round(dm.misses / res.seed_cost, 3),
                "fully_assoc": fa.misses,
                "misses/input": round(dm.misses_per_source_fire, 3),
            }
        )

    print(rows_to_table(rows, title="DES: placement vs direct-mapped conflict misses"))
    print(
        "\nReading the table: the seed topological layout pays heavily for set\n"
        "conflicts the schedule itself cannot avoid; greedy coloring removes\n"
        "some, and swap refinement (scored by the exact remap cost model)\n"
        "removes most of the rest.  The fully_assoc column is identical on\n"
        "every row — under the paper's model layout is provably irrelevant,\n"
        "which is precisely the freedom the optimizer exploits."
    )


if __name__ == "__main__":
    main()
